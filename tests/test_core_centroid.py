"""Tests for repro.core.centroid."""

import numpy as np
import pytest

from repro.core.centroid import (
    arithmetic_mean,
    compute_centroid,
    gradient_descent_centroid,
    weiszfeld_centroid,
)
from repro.geometry.distance import group_distance


@pytest.fixture
def triangle():
    return np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0]])


class TestArithmeticMean:
    def test_mean_of_symmetric_points(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
        assert arithmetic_mean(points).tolist() == [1.0, 1.0]


class TestGeometricMedianMethods:
    @pytest.mark.parametrize("method", [gradient_descent_centroid, weiszfeld_centroid])
    def test_single_point_returns_that_point(self, method):
        point = np.array([[3.0, 4.0]])
        assert method(point).tolist() == [3.0, 4.0]

    @pytest.mark.parametrize("method", [gradient_descent_centroid, weiszfeld_centroid])
    def test_two_points_median_lies_on_segment(self, method):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        centroid = method(points)
        # Any point on the segment minimises the summed distance (=10).
        assert group_distance(centroid, points) == pytest.approx(10.0, abs=1e-3)

    @pytest.mark.parametrize("method", [gradient_descent_centroid, weiszfeld_centroid])
    def test_identical_points_return_that_location(self, method):
        points = np.tile([2.0, 7.0], (6, 1))
        assert np.allclose(method(points), [2.0, 7.0])

    @pytest.mark.parametrize("method", [gradient_descent_centroid, weiszfeld_centroid])
    def test_median_not_worse_than_mean(self, method, triangle):
        # The approximated geometric median must achieve a summed distance no
        # worse than the arithmetic mean it starts from.
        centroid = method(triangle)
        assert group_distance(centroid, triangle) <= group_distance(
            arithmetic_mean(triangle), triangle
        ) + 1e-9

    @pytest.mark.parametrize("method", [gradient_descent_centroid, weiszfeld_centroid])
    def test_known_geometric_median_of_right_triangle(self, method):
        # For a 3-4-5 style configuration with an obtuse-enough vertex the
        # geometric median coincides with that vertex, but for a symmetric
        # equilateral triangle it is the centroid.  Use the equilateral case,
        # whose optimum is known analytically.
        side = 2.0
        points = np.array(
            [[0.0, 0.0], [side, 0.0], [side / 2, side * np.sqrt(3) / 2]]
        )
        expected = points.mean(axis=0)
        assert np.allclose(method(points), expected, atol=1e-2)

    def test_weiszfeld_close_to_gradient_descent(self, triangle):
        gd = gradient_descent_centroid(triangle)
        wf = weiszfeld_centroid(triangle)
        assert group_distance(gd, triangle) == pytest.approx(
            group_distance(wf, triangle), rel=1e-3
        )

    def test_random_configurations_beat_random_probes(self):
        # The approximate median should beat a large sample of random
        # candidate locations, otherwise the approximation is poor.
        rng = np.random.default_rng(9)
        for _ in range(5):
            points = rng.uniform(0, 100, size=(12, 2))
            centroid = weiszfeld_centroid(points)
            value = group_distance(centroid, points)
            probes = rng.uniform(0, 100, size=(200, 2))
            probe_best = min(group_distance(p, points) for p in probes)
            assert value <= probe_best + 1e-6


class TestComputeCentroid:
    def test_dispatches_by_name(self, triangle):
        assert np.allclose(compute_centroid(triangle, method="mean"), triangle.mean(axis=0))
        gradient = compute_centroid(triangle, method="gradient")
        weiszfeld = compute_centroid(triangle, method="weiszfeld")
        assert group_distance(gradient, triangle) == pytest.approx(
            group_distance(weiszfeld, triangle), rel=1e-3
        )

    def test_unknown_method_rejected(self, triangle):
        with pytest.raises(ValueError):
            compute_centroid(triangle, method="newton")
