"""Tests for repro.geometry.hilbert."""

import numpy as np
import pytest

from repro.geometry.hilbert import (
    hilbert_index_2d,
    hilbert_indices,
    hilbert_point_2d,
    hilbert_sort,
)


class TestHilbertCurve2D:
    def test_order_one_curve_visits_all_four_cells(self):
        indices = {hilbert_index_2d(x, y, order=1) for x in range(2) for y in range(2)}
        assert indices == {0, 1, 2, 3}

    def test_curve_is_a_bijection_at_order_three(self):
        side = 8
        indices = {
            hilbert_index_2d(x, y, order=3) for x in range(side) for y in range(side)
        }
        assert indices == set(range(side * side))

    def test_roundtrip_index_to_point(self):
        order = 4
        for d in range(0, 256, 7):
            x, y = hilbert_point_2d(d, order=order)
            assert hilbert_index_2d(x, y, order=order) == d

    def test_consecutive_indices_are_adjacent_cells(self):
        # The defining locality property of the Hilbert curve: successive
        # curve positions are Manhattan-distance-1 neighbors.
        order = 5
        previous = hilbert_point_2d(0, order=order)
        for d in range(1, (1 << order) ** 2):
            current = hilbert_point_2d(d, order=order)
            step = abs(current[0] - previous[0]) + abs(current[1] - previous[1])
            assert step == 1
            previous = current

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index_2d(4, 0, order=2)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            hilbert_point_2d(16, order=2)


class TestHilbertIndices:
    def test_indices_shape_matches_input(self):
        points = np.random.default_rng(0).uniform(0, 100, size=(40, 2))
        indices = hilbert_indices(points)
        assert indices.shape == (40,)
        assert indices.dtype == np.int64

    def test_identical_points_get_identical_indices(self):
        points = np.array([[5.0, 5.0], [5.0, 5.0], [1.0, 9.0]])
        indices = hilbert_indices(points)
        assert indices[0] == indices[1]

    def test_three_dimensional_points_are_supported(self):
        points = np.random.default_rng(1).uniform(0, 1, size=(10, 3))
        indices = hilbert_indices(points, order=8)
        assert indices.shape == (10,)


class TestHilbertSort:
    def test_sort_returns_a_permutation(self):
        points = np.random.default_rng(2).uniform(0, 1000, size=(100, 2))
        order = hilbert_sort(points)
        assert sorted(order.tolist()) == list(range(100))

    def test_sort_improves_locality_over_random_order(self):
        # The summed distance between consecutive points along the Hilbert
        # order should be far smaller than along the original random order.
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1000, size=(500, 2))
        order = hilbert_sort(points)
        sorted_points = points[order]

        def path_length(pts):
            return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))

        assert path_length(sorted_points) < 0.5 * path_length(points)

    def test_sort_is_deterministic(self):
        points = np.random.default_rng(4).uniform(0, 10, size=(50, 2))
        assert np.array_equal(hilbert_sort(points), hilbert_sort(points))
