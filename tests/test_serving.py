"""Tests for the serving subsystem: scheduler, protocol, stats, server.

The integration tests spin up real multi-process servers over a shared
mmap snapshot and pin the subsystem's core contract: answers are
bit-identical to sequential ``engine.execute`` for any worker count and
any batching window, shutdown is clean and bounded, overload sheds with
an error, and hot-swaps never tear in-flight work.
"""

import asyncio
import time

import numpy as np
import pytest

from repro import GNNEngine, QuerySpec
from repro.rtree.flat import FlatRTree
from repro.serve import (
    GNNServer,
    MicroBatcher,
    ServerOverloadedError,
    ServingCounters,
    ServingError,
    check_servable,
)
from repro.serve.protocol import BatchRequest, decode_spec, encode_spec
from repro.serve.stats import percentile
from repro.serve.worker import execute_batch_message
from repro.storage.counters import IOCounters, MappedPageCounters, merge_snapshots
from repro.storage.pointfile import PointFile


@pytest.fixture(scope="module")
def serve_points():
    generator = np.random.default_rng(404)
    clusters = generator.uniform(100, 900, size=(5, 2))
    assignments = generator.integers(0, 5, size=600)
    noise = generator.normal(scale=50.0, size=(600, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="module")
def sequential_engine(serve_points):
    return GNNEngine(serve_points, capacity=16)


@pytest.fixture(scope="module")
def snapshot_path(sequential_engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "snapshot-gen000000.npz"
    sequential_engine.snapshot().save(path, generation=0)
    return path


@pytest.fixture(scope="module")
def server(snapshot_path):
    with GNNServer(snapshot_path, workers=2, window_s=0.002) as srv:
        yield srv


def mixed_specs(rng, count):
    """A mixed workload: shared-eligible MBM plus every servable oddball."""
    specs = []
    for i in range(count):
        center = rng.uniform(100, 900, size=2)
        n = (3, 6, 6, 6, 9)[i % 5]
        group = rng.uniform(center - 90, center + 90, size=(n, 2))
        k = (1, 3, 3, 5)[i % 4]
        if i % 11 == 7:
            specs.append(QuerySpec(group=group, k=k, aggregate="max"))
        elif i % 11 == 8:
            specs.append(QuerySpec(group=group, k=k, weights=np.arange(1.0, n + 1.0)))
        elif i % 11 == 9:
            specs.append(QuerySpec(group=group, k=k, algorithm="brute-force"))
        elif i % 11 == 10:
            specs.append(QuerySpec(group=group, k=k, algorithm="mqm"))
        else:
            specs.append(QuerySpec(group=group, k=k))
    return specs


def as_tuples(result):
    return [neighbor.as_tuple() for neighbor in result.neighbors]


# ----------------------------------------------------------------------
# micro-batching scheduler (pure unit tests)
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_zero_window_dispatches_immediately(self):
        batcher = MicroBatcher(window_s=0.0, max_batch=32)
        assert batcher.offer("a", "x", now=0.0) == ["x"]
        assert len(batcher) == 0

    def test_size_trigger_flushes_full_bucket(self):
        batcher = MicroBatcher(window_s=1.0, max_batch=3)
        assert batcher.offer("a", 1, now=0.0) is None
        assert batcher.offer("a", 2, now=0.0) is None
        assert batcher.offer("a", 3, now=0.0) == [1, 2, 3]
        assert len(batcher) == 0

    def test_window_trigger_flushes_oldest_first(self):
        batcher = MicroBatcher(window_s=0.5, max_batch=32)
        batcher.offer("a", 1, now=0.0)
        batcher.offer("b", 2, now=0.2)
        assert batcher.due(now=0.4) == []
        assert batcher.due(now=0.55) == [[1]]
        assert batcher.next_deadline() == pytest.approx(0.7)
        assert batcher.due(now=0.8) == [[2]]

    def test_keys_bucket_independently(self):
        batcher = MicroBatcher(window_s=1.0, max_batch=2)
        batcher.offer("a", 1, now=0.0)
        batcher.offer("b", 2, now=0.0)
        assert batcher.offer("a", 3, now=0.0) == [1, 3]
        assert len(batcher) == 1  # "b" still pending

    def test_drain_flushes_everything(self):
        batcher = MicroBatcher(window_s=1.0, max_batch=32)
        batcher.offer("a", 1, now=0.0)
        batcher.offer("b", 2, now=0.0)
        flushed = sorted(batch[0] for batch in batcher.drain())
        assert flushed == [1, 2]
        assert len(batcher) == 0
        assert batcher.next_deadline() is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(window_s=-1.0, max_batch=4)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(window_s=0.1, max_batch=0)


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_spec_roundtrip_is_bit_exact(self, rng):
        spec = QuerySpec(
            group=rng.uniform(0, 1000, size=(7, 2)),
            k=4,
            aggregate="max",
            weights=np.arange(1.0, 8.0),
            options={"traversal": "best_first"},
            algorithm="best-first",
            label="tag-17",
        )
        decoded = decode_spec(encode_spec(spec))
        assert np.array_equal(decoded.group, spec.group)
        assert np.array_equal(decoded.weights, spec.weights)
        assert decoded.k == spec.k
        assert decoded.aggregate == spec.aggregate
        assert dict(decoded.options) == dict(spec.options)
        assert decoded.algorithm == spec.algorithm
        assert decoded.label == spec.label

    def test_group_file_specs_are_not_servable(self, rng, engine):
        queries = rng.uniform(0, 1000, size=(120, 2))
        spec = QuerySpec(group_file=PointFile(queries, points_per_page=20, block_pages=2))
        plan = engine.explain(spec)
        with pytest.raises(ValueError, match="group_file"):
            check_servable(spec, plan)

    def test_object_index_specs_are_not_servable(self, rng, engine):
        spec = QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), index="object")
        with pytest.raises(ValueError, match="index='object'"):
            check_servable(spec, engine.explain(spec))

    def test_depth_first_routes_are_not_servable(self, rng, engine):
        spec = QuerySpec(
            group=rng.uniform(0, 1000, size=(3, 2)),
            algorithm="spm",
            options={"traversal": "depth_first"},
        )
        with pytest.raises(ValueError, match="flat-snapshot"):
            check_servable(spec, engine.explain(spec))

    def test_flat_routed_specs_are_servable(self, rng, engine):
        for spec in (
            QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=2),
            QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), aggregate="min"),
            QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), algorithm="brute-force"),
        ):
            check_servable(spec, engine.explain(spec))


# ----------------------------------------------------------------------
# mergeable counters (storage satellite + serving stats)
# ----------------------------------------------------------------------
class TestMergeableCounters:
    def test_io_counters_merge_objects_and_dicts(self):
        left = IOCounters(page_reads=3, block_reads=1, sort_passes=1)
        right = IOCounters(page_reads=2, block_reads=4)
        left.merge(right)
        assert left.snapshot() == {"page_reads": 5, "block_reads": 5, "sort_passes": 1}
        left.merge({"page_reads": 10})
        assert left.page_reads == 15

    def test_mapped_page_counters_merge(self):
        left = MappedPageCounters(arrays_mapped=1, bytes_mapped=100, pages_mapped=1)
        left.merge(MappedPageCounters(arrays_mapped=2, bytes_mapped=200, pages_mapped=2))
        assert left.snapshot() == {
            "arrays_mapped": 3,
            "bytes_mapped": 300,
            "pages_mapped": 3,
        }

    def test_merge_snapshots_takes_key_union(self):
        merged = merge_snapshots([{"a": 1, "b": 2}, {"b": 3, "c": 4.5}, {}])
        assert merged == {"a": 1, "b": 5, "c": 4.5}

    def test_serving_counters_merge_sums_and_maxes(self):
        left = ServingCounters(requests=10, batches=2, largest_batch=8, cpu_time=0.5)
        right = ServingCounters(requests=5, batches=1, largest_batch=5, cpu_time=0.25)
        left.merge(right)
        assert left.requests == 15
        assert left.batches == 3
        assert left.largest_batch == 8  # max, not sum
        assert left.cpu_time == pytest.approx(0.75)
        left.merge({"requests": 1, "largest_batch": 20})
        assert left.requests == 16
        assert left.largest_batch == 20

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile([7.0], 99) == 7.0


# ----------------------------------------------------------------------
# worker execution path (in-process)
# ----------------------------------------------------------------------
class TestWorkerExecution:
    def test_bad_payload_fails_only_its_request(self, snapshot_path, rng):
        engine = GNNEngine.from_index(FlatRTree.load(snapshot_path, mmap_mode="r"))
        good = encode_spec(QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=2))
        bad = dict(good, group=np.zeros((0, 2)))  # empty group fails validation
        message = BatchRequest(epoch=0, snapshot_path=str(snapshot_path), items=((1, good), (2, bad)))
        items, counters, _ = execute_batch_message(engine, message)
        by_id = {request_id: (result, error) for request_id, result, error in items}
        assert by_id[1][0] is not None and by_id[1][1] is None
        assert by_id[2][0] is None and "non-empty" in by_id[2][1]
        assert counters.requests == 1

    def test_shared_bucket_charges_one_traversal(self, snapshot_path, rng):
        """Physical counters come from stats deltas: a shared bucket's
        single traversal is charged once, not once per member."""
        engine = GNNEngine.from_index(FlatRTree.load(snapshot_path, mmap_mode="r"))
        center = rng.uniform(300, 700, size=2)
        specs = [
            QuerySpec(group=rng.uniform(center - 50, center + 50, size=(5, 2)), k=2)
            for _ in range(8)
        ]
        message = BatchRequest(
            epoch=0,
            snapshot_path=str(snapshot_path),
            items=tuple((i, encode_spec(spec)) for i, spec in enumerate(specs)),
        )
        items, counters, _ = execute_batch_message(engine, message)
        results = [result for _, result, _ in items]
        assert all(result.cost.algorithm == "MBM-batch" for result in results)
        # Every member reports the bucket-level cost; the counters must
        # charge it once (equal to one member's counters, not 8x).
        assert counters.node_accesses == results[0].cost.node_accesses
        assert counters.requests == 8

    def test_io_stall_is_charged_and_slept(self, snapshot_path, rng):
        engine = GNNEngine.from_index(FlatRTree.load(snapshot_path, mmap_mode="r"))
        spec = QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=2)
        message = BatchRequest(
            epoch=0, snapshot_path=str(snapshot_path), items=((0, encode_spec(spec)),)
        )
        started = time.perf_counter()
        _, counters, _ = execute_batch_message(engine, message, io_stall_s_per_access=1e-4)
        elapsed = time.perf_counter() - started
        assert counters.io_stall_s == pytest.approx(1e-4 * counters.node_accesses)
        assert elapsed >= counters.io_stall_s


# ----------------------------------------------------------------------
# server integration
# ----------------------------------------------------------------------
class TestServerConformance:
    def test_200_mixed_specs_bit_identical_with_clean_shutdown(
        self, serve_points, sequential_engine, snapshot_path
    ):
        """The serving-smoke contract (also run as a dedicated CI job):
        2 workers, 200 mixed specs, answers bit-identical to sequential
        ``engine.execute``, shutdown bounded."""
        rng = np.random.default_rng(2004)
        specs = mixed_specs(rng, 200)
        server = GNNServer(snapshot_path, workers=2, window_s=0.002)
        try:
            futures = server.submit_many(specs)
            results = [future.result(timeout=60) for future in futures]
        finally:
            started = time.perf_counter()
            server.close(timeout=30)
            assert time.perf_counter() - started < 30
        for spec, served in zip(specs, results):
            expected = sequential_engine.execute(spec)
            assert as_tuples(served) == as_tuples(expected)
        snapshot = server.stats()
        assert snapshot["server"]["completed"] == 200
        assert snapshot["server"]["failed"] == 0
        assert snapshot["total"]["requests"] == 200
        assert snapshot["total"]["batches"] >= 1

    def test_any_batching_window_gives_identical_answers(
        self, sequential_engine, snapshot_path
    ):
        rng = np.random.default_rng(77)
        specs = mixed_specs(rng, 40)
        expected = [as_tuples(sequential_engine.execute(spec)) for spec in specs]
        for window_s, max_batch in ((0.0, 32), (0.05, 4)):
            with GNNServer(
                snapshot_path, workers=2, window_s=window_s, max_batch=max_batch
            ) as server:
                results = server.handle().run_many(specs, timeout=60)
            assert [as_tuples(result) for result in results] == expected

    def test_served_results_carry_no_plan(self, server, rng):
        result = server.handle().run(
            QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=2, trace=True),
            timeout=30,
        )
        assert result.plan is None

    def test_async_handle_matches_sequential(self, server, sequential_engine):
        rng = np.random.default_rng(13)
        specs = mixed_specs(rng, 12)

        async def run():
            return await server.async_handle().submit_many(specs)

        results = asyncio.run(run())
        for spec, served in zip(specs, results):
            assert as_tuples(served) == as_tuples(sequential_engine.execute(spec))

    def test_submit_time_validation(self, server, rng):
        with pytest.raises(ValueError, match="dimensionality"):
            server.submit(QuerySpec(group=rng.uniform(0, 1, size=(3, 4)), k=1))
        with pytest.raises(ValueError, match="unknown algorithm"):
            server.submit(QuerySpec(group=[[0.0, 0.0]], algorithm="quantum"))
        with pytest.raises(ValueError, match="does not understand option"):
            server.submit(
                QuerySpec(group=[[0.0, 0.0]], algorithm="mbm", options={"use_h3": False})
            )


class TestBackpressure:
    def test_overload_sheds_with_error(self, snapshot_path, rng):
        with GNNServer(
            snapshot_path, workers=1, window_s=0.05, max_batch=64, max_pending=8
        ) as server:
            accepted = []
            with pytest.raises(ServerOverloadedError, match="shed"):
                for _ in range(50):
                    accepted.append(
                        server.submit(QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=1))
                    )
            assert len(accepted) == 8
            for future in accepted:
                future.result(timeout=30)
            assert server.stats()["server"]["shed"] >= 1

    def test_submit_after_close_raises(self, snapshot_path, rng):
        server = GNNServer(snapshot_path, workers=1)
        server.close(timeout=10)
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1))

    def test_close_fails_unresolved_futures(self, snapshot_path, rng):
        server = GNNServer(snapshot_path, workers=1, window_s=5.0, max_batch=1024)
        future = server.submit(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1))
        # close() drains the batcher, so the queued request completes.
        server.close(timeout=20)
        assert future.done()
        result = future.result(timeout=1)
        assert result.neighbors


class TestCloseIdempotency:
    def test_close_twice_is_safe(self, snapshot_path, rng):
        server = GNNServer(snapshot_path, workers=1)
        future = server.submit(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1))
        server.close(timeout=20)
        server.close(timeout=20)  # second close must be a bounded no-op
        assert future.done()

    def test_concurrent_closers_all_return(self, snapshot_path):
        import threading

        server = GNNServer(snapshot_path, workers=2)
        threads = [
            threading.Thread(target=server.close, kwargs={"timeout": 20})
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        server.close(timeout=5)  # and once more after teardown completed

    def test_close_after_worker_crash_does_not_raise(self, snapshot_path, rng):
        """A crashed worker must not turn shutdown into an exception:
        queue feeders may be broken, joins must fall back to terminate."""
        server = GNNServer(snapshot_path, workers=1, window_s=5.0, max_batch=1024)
        future = server.submit(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1))
        for process in server._workers:
            process.kill()
            process.join(timeout=10)
        server.close(timeout=20)
        server.close(timeout=20)
        # The queued request cannot have survived; close() failed it
        # with a ServingError instead of leaving it hanging forever.
        assert future.done()
        with pytest.raises(ServingError):
            future.result(timeout=1)

    def test_submit_racing_close_never_hangs(self, snapshot_path, rng):
        import threading

        server = GNNServer(snapshot_path, workers=1, window_s=0.001)
        specs = [
            QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1) for _ in range(50)
        ]
        futures = []

        def submitter():
            for spec in specs:
                try:
                    futures.append(server.submit(spec))
                except RuntimeError:
                    return  # server closed under us: expected

        thread = threading.Thread(target=submitter)
        thread.start()
        time.sleep(0.01)
        server.close(timeout=20)
        thread.join(timeout=30)
        assert not thread.is_alive()
        for future in futures:
            assert future.done()


class TestHotSwap:
    def test_publish_snapshot_remaps_workers(self, serve_points, snapshot_path):
        group = np.array([[555.0, 555.0], [557.0, 555.0]])
        spec = QuerySpec(group=group, k=1)
        with GNNServer(snapshot_path, workers=2) as server:
            handle = server.handle()
            before = handle.run(spec, timeout=30)
            grown = GNNEngine(np.vstack([serve_points, [[556.0, 555.0]]]), capacity=16)
            epoch = server.publish_snapshot(grown)
            assert epoch == 1
            assert server.epoch == 1
            after = handle.run(spec, timeout=30)
            assert after.record_ids() == [len(serve_points)]
            assert before.record_ids() != after.record_ids()
            # The published file carries the generation token.
            assert FlatRTree.load(server.snapshot_path).generation == 1
            stats = server.stats()
            assert stats["server"]["swaps"] == 1
            assert sum(w["snapshot_swaps"] for w in stats["workers"].values()) >= 1

    def test_swap_rejects_mismatched_snapshot(self, snapshot_path, tmp_path, rng):
        with GNNServer(snapshot_path, workers=1) as server:
            other = tmp_path / "threed.npz"
            GNNEngine(rng.uniform(0, 1, size=(50, 3)), capacity=8).snapshot().save(other)
            with pytest.raises(ValueError, match="3-d"):
                server.swap_snapshot(other)
            with pytest.raises(FileNotFoundError):
                server.swap_snapshot(tmp_path / "missing.npz")

    def test_generation_token_roundtrips(self, sequential_engine, tmp_path):
        path = tmp_path / "gen.npz"
        sequential_engine.snapshot().save(path, generation=41)
        assert FlatRTree.load(path).generation == 41
        assert FlatRTree.load(path, mmap_mode="r").generation == 41


class TestServingErrorType:
    def test_serving_error_is_runtime_error(self):
        assert issubclass(ServingError, RuntimeError)
        assert issubclass(ServerOverloadedError, RuntimeError)
