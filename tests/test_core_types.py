"""Tests for repro.core.types."""

import numpy as np
import pytest

from repro.core.types import BestList, GNNResult, GroupNeighbor, GroupQuery, QueryCost
from repro.geometry.mbr import MBR


class TestGroupQuery:
    def test_basic_properties(self):
        query = GroupQuery([[0.0, 0.0], [2.0, 2.0]], k=3)
        assert query.cardinality == 2
        assert query.dims == 2
        assert query.k == 3
        assert len(query) == 2

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            GroupQuery([[0.0, 0.0]], k=0)

    def test_mbr_is_cached_and_correct(self):
        query = GroupQuery([[0.0, 1.0], [4.0, -1.0]])
        assert query.mbr == MBR([0.0, -1.0], [4.0, 1.0])
        assert query.mbr is query.mbr  # cached instance

    def test_distance_to_sums_euclidean_distances(self):
        query = GroupQuery([[0.0, 0.0], [3.0, 4.0]])
        assert query.distance_to([0.0, 0.0]) == pytest.approx(5.0)

    def test_distance_respects_aggregate(self):
        query = GroupQuery([[0.0, 0.0], [3.0, 4.0]], aggregate="max")
        assert query.distance_to([0.0, 0.0]) == pytest.approx(5.0)
        query_min = GroupQuery([[0.0, 0.0], [3.0, 4.0]], aggregate="min")
        assert query_min.distance_to([0.0, 0.0]) == pytest.approx(0.0)

    def test_mindist_lower_bound_holds(self):
        rng = np.random.default_rng(0)
        group = rng.uniform(0, 10, size=(5, 2))
        query = GroupQuery(group)
        box = MBR([2.0, 2.0], [4.0, 4.0])
        bound = query.mindist_lower_bound(box)
        for p in rng.uniform(2.0, 4.0, size=(30, 2)):
            assert query.distance_to(p) >= bound - 1e-9

    def test_total_weight_defaults_to_cardinality(self):
        query = GroupQuery([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert query.total_weight() == 3.0

    def test_total_weight_with_weights(self):
        query = GroupQuery([[0.0, 0.0], [1.0, 1.0]], weights=[2.0, 0.5])
        assert query.total_weight() == 2.5

    def test_single_point_group(self):
        query = GroupQuery([5.0, 5.0])
        assert query.cardinality == 1
        assert query.distance_to([5.0, 8.0]) == pytest.approx(3.0)


class TestGroupNeighbor:
    def test_as_tuple(self):
        neighbor = GroupNeighbor(3, np.array([1.0, 2.0]), 4.5)
        assert neighbor.as_tuple() == (3, 4.5)

    def test_repr(self):
        assert "id=3" in repr(GroupNeighbor(3, np.array([1.0, 2.0]), 4.5))


class TestBestList:
    def test_best_dist_is_infinite_until_full(self):
        best = BestList(2)
        assert best.best_dist == float("inf")
        best.offer(1, np.zeros(2), 5.0)
        assert best.best_dist == float("inf")
        best.offer(2, np.zeros(2), 7.0)
        assert best.best_dist == 7.0

    def test_offer_replaces_worst_when_better(self):
        best = BestList(2)
        best.offer(1, np.zeros(2), 5.0)
        best.offer(2, np.zeros(2), 7.0)
        assert best.offer(3, np.zeros(2), 6.0)
        assert best.best_dist == 6.0
        assert [n.record_id for n in best.neighbors()] == [1, 3]

    def test_offer_rejects_worse_candidate_when_full(self):
        best = BestList(1)
        best.offer(1, np.zeros(2), 5.0)
        assert not best.offer(2, np.zeros(2), 9.0)
        assert [n.record_id for n in best.neighbors()] == [1]

    def test_duplicate_record_ids_ignored(self):
        best = BestList(3)
        assert best.offer(1, np.zeros(2), 5.0)
        assert not best.offer(1, np.zeros(2), 4.0)
        assert len(best) == 1

    def test_membership(self):
        best = BestList(2)
        best.offer(9, np.zeros(2), 1.0)
        assert 9 in best
        assert 5 not in best

    def test_neighbors_sorted_by_distance(self):
        best = BestList(4)
        for record_id, distance in [(1, 4.0), (2, 1.0), (3, 3.0), (4, 2.0)]:
            best.offer(record_id, np.zeros(2), distance)
        assert [n.record_id for n in best.neighbors()] == [2, 4, 3, 1]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            BestList(0)

    def test_eviction_frees_the_record_id(self):
        best = BestList(1)
        best.offer(1, np.zeros(2), 5.0)
        best.offer(2, np.zeros(2), 3.0)  # evicts 1
        assert best.offer(1, np.zeros(2), 2.0)  # 1 can re-enter
        assert [n.record_id for n in best.neighbors()] == [1]


class TestResultTypes:
    def test_query_cost_as_dict(self):
        cost = QueryCost(algorithm="MBM", node_accesses=10, cpu_time=0.5)
        as_dict = cost.as_dict()
        assert as_dict["algorithm"] == "MBM"
        assert as_dict["node_accesses"] == 10

    def test_result_accessors(self):
        neighbors = [
            GroupNeighbor(1, np.zeros(2), 1.0),
            GroupNeighbor(2, np.zeros(2), 2.0),
        ]
        result = GNNResult(neighbors=neighbors, cost=QueryCost(algorithm="SPM"))
        assert result.best.record_id == 1
        assert result.distances() == [1.0, 2.0]
        assert result.record_ids() == [1, 2]

    def test_empty_result_best_is_none(self):
        assert GNNResult().best is None
