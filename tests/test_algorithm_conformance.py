"""Cross-algorithm conformance matrix.

Every registered algorithm that can answer a spec must return the same
result set as brute force — same record ids under the library's
deterministic tie-breaking (ascending ``(distance, record_id)``) and the
same distances to 1e-9 — across aggregates, weighted queries, both
residencies, and dynamic (insert/delete) trees.  A fixed-seed workload
additionally pins the node/page-access counters so accounting
regressions (e.g. a vectorised path charging differently from the
entry-at-a-time loop it replaced) are caught immediately.

Setting ``REPRO_FLAT_CONFORMANCE=memory`` (or ``mmap``) reruns the
whole matrix — including the pinned counters — against a flat
array-backed snapshot of the same tree (built in memory, or saved to
``.npz`` and reopened memory-mapped): the CI ``flat-conformance`` job
runs both modes, proving the flat traversals are bit-identical drop-in
replacements.
"""

import os

import numpy as np
import pytest

from repro.api.executor import ExecutionContext, execute_spec
from repro.api.registry import available_algorithms
from repro.api.spec import DISK, MEMORY, QuerySpec
from repro.core.bruteforce import brute_force_gnn
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree

SEED = 20040101

#: "" (default): object tree only.  "memory": route memory-resident
#: specs through an in-memory flat snapshot.  "mmap": through a
#: snapshot saved to .npz and reopened with mmap_mode="r".
FLAT_MODE = os.environ.get("REPRO_FLAT_CONFORMANCE", "").lower()

#: Simulated-disk geometry small enough that the 60-point disk group
#: splits into multiple blocks (so F-MQM/F-MBM exercise their
#: multi-block logic).
DISK_OPTIONS = {"points_per_page": 10, "block_pages": 2}


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(SEED)
    clusters = rng.uniform(100, 900, size=(5, 2))
    assignments = rng.integers(0, 5, size=500)
    noise = rng.normal(scale=60.0, size=(500, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="module")
def tree(dataset):
    return RTree.bulk_load(dataset, capacity=16)


@pytest.fixture(scope="module")
def context(dataset, tree, tmp_path_factory):
    if FLAT_MODE == "memory":
        flat = FlatRTree.from_tree(tree)
    elif FLAT_MODE == "mmap":
        path = tmp_path_factory.mktemp("flat-conformance") / "index.npz"
        FlatRTree.from_tree(tree).save(path)
        flat = FlatRTree.load(path, mmap_mode="r")
    elif FLAT_MODE == "":
        flat = None
    else:  # pragma: no cover - misconfiguration guard
        raise ValueError(f"unknown REPRO_FLAT_CONFORMANCE mode {FLAT_MODE!r}")
    return ExecutionContext(tree=tree, points=dataset, flat=flat)


def _shared_groups():
    """The shared random workload: diverse cardinalities and extents."""
    rng = np.random.default_rng(SEED + 1)
    groups = []
    for n in (1, 3, 8, 32):
        center = rng.uniform(250, 750, size=2)
        spread = rng.uniform(20, 300)
        groups.append(rng.uniform(center - spread, center + spread, size=(n, 2)))
    return groups


def _assert_matches_reference(result, reference, label):
    assert result.record_ids() == reference.record_ids(), label
    assert np.allclose(result.distances(), reference.distances(), rtol=1e-9, atol=1e-9), label


class TestMemoryEquivalenceMatrix:
    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_all_capable_algorithms_agree_with_brute_force(self, context, aggregate, k):
        ran = set()
        for group in _shared_groups():
            base = QuerySpec(group=group, k=k, aggregate=aggregate)
            reference = brute_force_gnn(context.points, base.group_query())
            for info in available_algorithms(MEMORY):
                spec = QuerySpec(group=group, k=k, aggregate=aggregate, algorithm=info.name)
                if not info.supports(spec):
                    continue
                ran.add(info.name)
                result = execute_spec(context, spec)
                _assert_matches_reference(
                    result, reference, f"{info.name} k={k} aggregate={aggregate}"
                )
        # the matrix must actually cover the paper's algorithms
        if aggregate == "sum":
            assert {"mqm", "spm", "mbm", "best-first", "brute-force"} <= ran
        else:
            assert {"best-first", "brute-force"} <= ran

    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_weighted_queries_agree_with_brute_force(self, context, aggregate):
        rng = np.random.default_rng(SEED + 2)
        for group in _shared_groups():
            weights = rng.uniform(0.5, 2.0, size=group.shape[0])
            base = QuerySpec(group=group, k=3, aggregate=aggregate, weights=weights)
            reference = brute_force_gnn(context.points, base.group_query())
            for info in available_algorithms(MEMORY):
                spec = QuerySpec(
                    group=group, k=3, aggregate=aggregate, weights=weights, algorithm=info.name
                )
                if not info.supports(spec):
                    continue
                result = execute_spec(context, spec)
                _assert_matches_reference(
                    result, reference, f"{info.name} weighted aggregate={aggregate}"
                )


class TestDiskEquivalenceMatrix:
    @pytest.mark.parametrize("k", [1, 4])
    def test_disk_algorithms_agree_with_brute_force(self, context, k):
        rng = np.random.default_rng(SEED + 3)
        ran = set()
        for n in (25, 60):
            group = rng.uniform(150, 850, size=(n, 2))
            reference = brute_force_gnn(
                context.points, QuerySpec(group=group, k=k).group_query()
            )
            for info in available_algorithms(DISK):
                options = (
                    {"query_tree_capacity": 8} if info.name == "gcp" else dict(DISK_OPTIONS)
                )
                spec = QuerySpec(
                    group=group, k=k, residency=DISK, algorithm=info.name, options=options
                )
                if not info.supports(spec):
                    continue
                ran.add(info.name)
                result = execute_spec(context, spec)
                _assert_matches_reference(result, reference, f"{info.name} k={k} n={n}")
        assert {"fmqm", "fmbm", "gcp"} <= ran


class TestPinnedAccessCounters:
    """Fixed-seed workload with hard-pinned counters.

    The values were captured from the reference implementation; any
    change to traversal order, pruning, or cost charging shows up here
    as an exact-integer diff.  Update them only for a *deliberate*
    accounting change.
    """

    MEMORY_PINS = {
        "mqm": (142, 3008),
        "spm": (23, 3392),
        "mbm": (19, 3614),
        "best-first": (5, 1088),
    }
    DISK_PINS = {
        "fmqm": (39, 594),
        "fmbm": (35, 168),
    }
    GCP_PIN = (3895, 0)

    @pytest.fixture()
    def pinned_group(self):
        return np.random.default_rng(7).uniform(300, 700, size=(16, 2))

    def test_memory_counters(self, context, tree, pinned_group):
        for name, (node_accesses, distance_computations) in self.MEMORY_PINS.items():
            tree.reset_stats()
            result = execute_spec(context, QuerySpec(group=pinned_group, k=4, algorithm=name))
            assert result.cost.node_accesses == node_accesses, name
            assert result.cost.distance_computations == distance_computations, name

    def test_disk_counters(self, context, tree):
        disk_group = np.random.default_rng(7).uniform(200, 800, size=(60, 2))
        for name, (node_accesses, page_reads) in self.DISK_PINS.items():
            tree.reset_stats()
            result = execute_spec(
                context,
                QuerySpec(
                    group=disk_group,
                    k=4,
                    residency=DISK,
                    algorithm=name,
                    options=dict(DISK_OPTIONS),
                ),
            )
            assert result.cost.node_accesses == node_accesses, name
            assert result.cost.page_reads == page_reads, name
        tree.reset_stats()
        result = execute_spec(
            context,
            QuerySpec(
                group=disk_group,
                k=4,
                residency=DISK,
                algorithm="gcp",
                options={"query_tree_capacity": 8},
            ),
        )
        assert (result.cost.node_accesses, result.cost.distance_computations) == self.GCP_PIN


class TestDynamicTreeConformance:
    """Inserts and deletes must keep the cached node arrays honest."""

    def test_mutation_heavy_tree_agrees_with_brute_force(self):
        rng = np.random.default_rng(SEED + 5)
        points = rng.uniform(0, 100, size=(300, 2))
        tree = RTree(dims=2, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, record_id=i)
        group = rng.uniform(20, 80, size=(6, 2))

        def check():
            alive = sorted(tree.all_points(), key=lambda item: item[0])
            ids = np.array([record_id for record_id, _ in alive])
            pts = np.vstack([point for _, point in alive])
            reference = brute_force_gnn(pts, QuerySpec(group=group, k=5).group_query())
            context = ExecutionContext(tree=tree, points=None)
            for name in ("mbm", "spm", "best-first"):
                result = execute_spec(context, QuerySpec(group=group, k=5, algorithm=name))
                expected_ids = [int(ids[i]) for i in reference.record_ids()]
                assert result.record_ids() == expected_ids, name
                assert np.allclose(
                    result.distances(), reference.distances(), rtol=1e-9, atol=1e-9
                ), name

        check()
        # Interleave queries with deletions and re-insertions: any stale
        # cached coordinate array would surface as a wrong result here.
        for i in range(0, 150, 2):
            assert tree.delete(points[i], record_id=i)
        check()
        for i in range(0, 150, 2):
            tree.insert(points[i] + 0.25, record_id=1000 + i)
        tree.validate()
        check()
