"""Cross-algorithm conformance matrix.

Every registered algorithm that can answer a spec must return the same
result set as brute force — same record ids under the library's
deterministic tie-breaking (ascending ``(distance, record_id)``) and the
same distances to 1e-9 — across aggregates, weighted queries, both
residencies, and dynamic (insert/delete) trees.  A fixed-seed workload
additionally pins the node/page-access counters so accounting
regressions (e.g. a vectorised path charging differently from the
entry-at-a-time loop it replaced) are caught immediately.

Setting ``REPRO_FLAT_CONFORMANCE=memory`` (or ``mmap``) reruns the
whole matrix — including the pinned counters — against a flat
array-backed snapshot of the same tree (built in memory, or saved to
``.npz`` and reopened memory-mapped): the CI ``flat-conformance`` job
runs both modes, proving the flat traversals are bit-identical drop-in
replacements.
"""

import os

import numpy as np
import pytest

from repro.api.executor import ExecutionContext, execute_batch, execute_spec
from repro.api.planner import QueryPlanner
from repro.api.registry import available_algorithms
from repro.api.spec import DISK, MEMORY, QuerySpec
from repro.core.bruteforce import brute_force_gnn
from repro.core.mqm import mqm
from repro.core.types import GroupQuery
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree
from repro.storage.buffer import LRUBuffer

SEED = 20040101

#: "" (default): object tree only.  "memory": route memory-resident
#: specs through an in-memory flat snapshot.  "mmap": through a
#: snapshot saved to .npz and reopened with mmap_mode="r".
FLAT_MODE = os.environ.get("REPRO_FLAT_CONFORMANCE", "").lower()

#: Simulated-disk geometry small enough that the 60-point disk group
#: splits into multiple blocks (so F-MQM/F-MBM exercise their
#: multi-block logic).
DISK_OPTIONS = {"points_per_page": 10, "block_pages": 2}


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(SEED)
    clusters = rng.uniform(100, 900, size=(5, 2))
    assignments = rng.integers(0, 5, size=500)
    noise = rng.normal(scale=60.0, size=(500, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="module")
def tree(dataset):
    return RTree.bulk_load(dataset, capacity=16)


@pytest.fixture(scope="module")
def context(dataset, tree, tmp_path_factory):
    if FLAT_MODE == "memory":
        flat = FlatRTree.from_tree(tree)
    elif FLAT_MODE == "mmap":
        path = tmp_path_factory.mktemp("flat-conformance") / "index.npz"
        FlatRTree.from_tree(tree).save(path)
        flat = FlatRTree.load(path, mmap_mode="r")
    elif FLAT_MODE == "":
        flat = None
    else:  # pragma: no cover - misconfiguration guard
        raise ValueError(f"unknown REPRO_FLAT_CONFORMANCE mode {FLAT_MODE!r}")
    return ExecutionContext(tree=tree, points=dataset, flat=flat)


def _shared_groups():
    """The shared random workload: diverse cardinalities and extents."""
    rng = np.random.default_rng(SEED + 1)
    groups = []
    for n in (1, 3, 8, 32):
        center = rng.uniform(250, 750, size=2)
        spread = rng.uniform(20, 300)
        groups.append(rng.uniform(center - spread, center + spread, size=(n, 2)))
    return groups


def _assert_matches_reference(result, reference, label):
    assert result.record_ids() == reference.record_ids(), label
    assert np.allclose(result.distances(), reference.distances(), rtol=1e-9, atol=1e-9), label


class TestMemoryEquivalenceMatrix:
    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_all_capable_algorithms_agree_with_brute_force(self, context, aggregate, k):
        ran = set()
        for group in _shared_groups():
            base = QuerySpec(group=group, k=k, aggregate=aggregate)
            reference = brute_force_gnn(context.points, base.group_query())
            for info in available_algorithms(MEMORY):
                spec = QuerySpec(group=group, k=k, aggregate=aggregate, algorithm=info.name)
                if not info.supports(spec):
                    continue
                ran.add(info.name)
                result = execute_spec(context, spec)
                _assert_matches_reference(
                    result, reference, f"{info.name} k={k} aggregate={aggregate}"
                )
        # the matrix must actually cover the paper's algorithms
        if aggregate == "sum":
            assert {"mqm", "spm", "mbm", "best-first", "brute-force"} <= ran
        else:
            assert {"best-first", "brute-force"} <= ran

    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_weighted_queries_agree_with_brute_force(self, context, aggregate):
        rng = np.random.default_rng(SEED + 2)
        for group in _shared_groups():
            weights = rng.uniform(0.5, 2.0, size=group.shape[0])
            base = QuerySpec(group=group, k=3, aggregate=aggregate, weights=weights)
            reference = brute_force_gnn(context.points, base.group_query())
            for info in available_algorithms(MEMORY):
                spec = QuerySpec(
                    group=group, k=3, aggregate=aggregate, weights=weights, algorithm=info.name
                )
                if not info.supports(spec):
                    continue
                result = execute_spec(context, spec)
                _assert_matches_reference(
                    result, reference, f"{info.name} weighted aggregate={aggregate}"
                )


class TestDiskEquivalenceMatrix:
    @pytest.mark.parametrize("k", [1, 4])
    def test_disk_algorithms_agree_with_brute_force(self, context, k):
        rng = np.random.default_rng(SEED + 3)
        ran = set()
        for n in (25, 60):
            group = rng.uniform(150, 850, size=(n, 2))
            reference = brute_force_gnn(
                context.points, QuerySpec(group=group, k=k).group_query()
            )
            for info in available_algorithms(DISK):
                options = (
                    {"query_tree_capacity": 8} if info.name == "gcp" else dict(DISK_OPTIONS)
                )
                spec = QuerySpec(
                    group=group, k=k, residency=DISK, algorithm=info.name, options=options
                )
                if not info.supports(spec):
                    continue
                ran.add(info.name)
                result = execute_spec(context, spec)
                _assert_matches_reference(result, reference, f"{info.name} k={k} n={n}")
        assert {"fmqm", "fmbm", "gcp"} <= ran


class TestPinnedAccessCounters:
    """Fixed-seed workload with hard-pinned counters.

    The values were captured from the reference implementation; any
    change to traversal order, pruning, or cost charging shows up here
    as an exact-integer diff.  Update them only for a *deliberate*
    accounting change.
    """

    MEMORY_PINS = {
        "mqm": (142, 3008),
        "spm": (23, 3392),
        "mbm": (19, 3614),
        "best-first": (5, 1088),
    }
    DISK_PINS = {
        "fmqm": (39, 594),
        "fmbm": (35, 168),
    }
    GCP_PIN = (3895, 0)

    @pytest.fixture()
    def pinned_group(self):
        return np.random.default_rng(7).uniform(300, 700, size=(16, 2))

    def test_memory_counters(self, context, tree, pinned_group):
        for name, (node_accesses, distance_computations) in self.MEMORY_PINS.items():
            tree.reset_stats()
            result = execute_spec(context, QuerySpec(group=pinned_group, k=4, algorithm=name))
            assert result.cost.node_accesses == node_accesses, name
            assert result.cost.distance_computations == distance_computations, name

    def test_disk_counters(self, context, tree):
        disk_group = np.random.default_rng(7).uniform(200, 800, size=(60, 2))
        for name, (node_accesses, page_reads) in self.DISK_PINS.items():
            tree.reset_stats()
            result = execute_spec(
                context,
                QuerySpec(
                    group=disk_group,
                    k=4,
                    residency=DISK,
                    algorithm=name,
                    options=dict(DISK_OPTIONS),
                ),
            )
            assert result.cost.node_accesses == node_accesses, name
            assert result.cost.page_reads == page_reads, name
        tree.reset_stats()
        result = execute_spec(
            context,
            QuerySpec(
                group=disk_group,
                k=4,
                residency=DISK,
                algorithm="gcp",
                options={"query_tree_capacity": 8},
            ),
        )
        assert (result.cost.node_accesses, result.cost.distance_computations) == self.GCP_PIN


class TestDynamicTreeConformance:
    """Inserts and deletes must keep the cached node arrays honest."""

    def test_mutation_heavy_tree_agrees_with_brute_force(self):
        rng = np.random.default_rng(SEED + 5)
        points = rng.uniform(0, 100, size=(300, 2))
        tree = RTree(dims=2, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, record_id=i)
        group = rng.uniform(20, 80, size=(6, 2))

        def check():
            alive = sorted(tree.all_points(), key=lambda item: item[0])
            ids = np.array([record_id for record_id, _ in alive])
            pts = np.vstack([point for _, point in alive])
            reference = brute_force_gnn(pts, QuerySpec(group=group, k=5).group_query())
            context = ExecutionContext(tree=tree, points=None)
            for name in ("mbm", "spm", "best-first"):
                result = execute_spec(context, QuerySpec(group=group, k=5, algorithm=name))
                expected_ids = [int(ids[i]) for i in reference.record_ids()]
                assert result.record_ids() == expected_ids, name
                assert np.allclose(
                    result.distances(), reference.distances(), rtol=1e-9, atol=1e-9
                ), name

        check()
        # Interleave queries with deletions and re-insertions: any stale
        # cached coordinate array would surface as a wrong result here.
        for i in range(0, 150, 2):
            assert tree.delete(points[i], record_id=i)
        check()
        for i in range(0, 150, 2):
            tree.insert(points[i] + 0.25, record_id=1000 + i)
        tree.validate()
        check()


class TestMultiStreamMQMConformance:
    """The vectorized multi-stream MQM engine vs the object-path reference.

    The flat engine replaces ``n`` generator streams with one merged
    frontier; it must be *indistinguishable* from object MQM — same
    neighbors, same node-access/leaf-access/distance-computation
    counters, and (with an attached LRU buffer) the same hit/miss
    sequence — across ``k`` and group cardinalities, with deterministic
    ``(distance, record_id)`` result ordering.
    """

    @pytest.fixture(scope="class")
    def flat(self, tree):
        return FlatRTree.from_tree(tree, buffer=None)

    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_flat_mqm_is_bit_identical_to_object_mqm(self, tree, flat, k):
        rng = np.random.default_rng(SEED + 7)
        for n in (2, 9, 33):
            group = rng.uniform(150, 850, size=(n, 2))
            reference = mqm(tree, GroupQuery(group, k=k))
            result = mqm(flat, GroupQuery(group, k=k))
            assert [nb.as_tuple() for nb in result.neighbors] == [
                nb.as_tuple() for nb in reference.neighbors
            ], (k, n)
            assert (
                result.cost.node_accesses,
                result.cost.leaf_accesses,
                result.cost.distance_computations,
            ) == (
                reference.cost.node_accesses,
                reference.cost.leaf_accesses,
                reference.cost.distance_computations,
            ), (k, n)
            pairs = [(nb.distance, nb.record_id) for nb in result.neighbors]
            assert pairs == sorted(pairs), "results must be (distance, id) ordered"

    def test_flat_mqm_preserves_buffer_hit_miss_sequence(self, dataset):
        object_buffer = LRUBuffer(8)
        flat_buffer = LRUBuffer(8)
        tree = RTree.bulk_load(dataset, capacity=16, buffer=object_buffer)
        flat = FlatRTree.from_tree(tree, buffer=flat_buffer)
        rng = np.random.default_rng(SEED + 8)
        for _ in range(4):
            group = rng.uniform(200, 800, size=(12, 2))
            reference = mqm(tree, GroupQuery(group, k=4))
            result = mqm(flat, GroupQuery(group, k=4))
            assert result.cost.page_faults == reference.cost.page_faults
        assert (flat_buffer.hits, flat_buffer.misses) == (
            object_buffer.hits,
            object_buffer.misses,
        )

    def test_weighted_mqm_rejected_on_both_paths(self, tree):
        flat = FlatRTree.from_tree(tree, buffer=None)
        group = np.random.default_rng(SEED).uniform(300, 700, size=(4, 2))
        weights = np.array([1.0, 2.0, 1.0, 0.5])
        for index in (tree, flat):
            with pytest.raises(ValueError, match="weighted"):
                mqm(index, GroupQuery(group, k=2, weights=weights))
        with pytest.raises(ValueError, match="does not support weighted"):
            QueryPlanner().plan(
                QuerySpec(group=group, k=2, weights=weights, algorithm="mqm")
            )

    def test_disk_resident_mqm_rejected_at_plan_time(self):
        group = np.random.default_rng(SEED).uniform(300, 700, size=(40, 2))
        with pytest.raises(ValueError, match="memory-resident"):
            QueryPlanner().plan(
                QuerySpec(group=group, k=2, residency=DISK, algorithm="mqm")
            )


class TestSharedTraversalBatchConformance:
    """``execute_many``'s shared-traversal path vs object-path MQM.

    One bucket traversal answers every spec; the answers must equal the
    object-path MQM answers (the reference algorithm for sum groups)
    and per-query ``execute``, with the pinned bucket-level counters of
    the shared traversal and deterministic ``(distance, record_id)``
    ordering.
    """

    #: Bucket-level counters of the shared traversal for the pinned
    #: workload below, by k.  The traversal reads each snapshot node at
    #: most once per bucket — far below the summed per-query counts —
    #: and any change to its pruning or charging shows up here exactly.
    BATCH_PINS = {
        1: (22, 18624),
        4: (22, 20984),
        8: (27, 22776),
    }

    @pytest.fixture()
    def pinned_specs(self):
        rng = np.random.default_rng(SEED + 9)
        specs = []
        for _ in range(16):
            center = rng.uniform(250, 750, size=2)
            group = rng.uniform(center - 100, center + 100, size=(8, 2))
            specs.append(QuerySpec(group=group, k=4))
        return specs

    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_batch_matches_object_mqm_and_per_query_execute(self, context, tree, k):
        rng = np.random.default_rng(SEED + 10)
        specs = []
        for _ in range(12):
            center = rng.uniform(250, 750, size=2)
            group = rng.uniform(center - 120, center + 120, size=(6, 2))
            specs.append(QuerySpec(group=group, k=k))
        flat_context = ExecutionContext(
            tree=tree, points=context.points, flat=FlatRTree.from_tree(tree, buffer=None)
        )
        outcomes = execute_batch(flat_context, specs)
        for spec, outcome in zip(specs, outcomes):
            reference = mqm(tree, spec.group_query())
            assert outcome.record_ids() == reference.record_ids(), k
            assert np.allclose(
                outcome.distances(), reference.distances(), rtol=1e-9, atol=1e-9
            ), k
            single = execute_spec(flat_context, spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()
            pairs = [(nb.distance, nb.record_id) for nb in outcome.neighbors]
            assert pairs == sorted(pairs)

    def test_pinned_bucket_counters(self, tree, pinned_specs):
        flat = FlatRTree.from_tree(tree, buffer=None)
        flat_context = ExecutionContext(tree=tree, points=None, flat=flat)
        for k, (node_accesses, distance_computations) in self.BATCH_PINS.items():
            specs = [spec.replace(k=k) for spec in pinned_specs]
            outcomes = execute_batch(flat_context, specs)
            for outcome in outcomes:
                assert outcome.cost.algorithm == "MBM-batch"
                assert outcome.cost.node_accesses == node_accesses, k
                assert outcome.cost.distance_computations == distance_computations, k

    def test_weighted_specs_stay_off_the_shared_path(self, context, tree):
        rng = np.random.default_rng(SEED + 11)
        group = rng.uniform(300, 700, size=(5, 2))
        weights = rng.uniform(0.5, 2.0, size=5)
        specs = [
            QuerySpec(group=group, k=3, weights=weights, algorithm="mbm")
            for _ in range(3)
        ]
        flat_context = ExecutionContext(
            tree=tree, points=context.points, flat=FlatRTree.from_tree(tree, buffer=None)
        )
        outcomes = execute_batch(flat_context, specs)
        reference = execute_spec(flat_context, specs[0])
        for outcome in outcomes:
            assert outcome.cost.algorithm != "MBM-batch"
            assert outcome.record_ids() == reference.record_ids()


class TestMutationConformance:
    """The matrix under mutation: interleaved insert/delete/query rounds.

    The engine under test is shaped by ``REPRO_FLAT_CONFORMANCE`` like the
    rest of this module — ``""`` mutates a tree-backed engine before its
    snapshot exists, ``memory`` mutates through a delta overlay on an
    eagerly built snapshot, ``mmap`` mutates a snapshot-only engine over
    a read-only memory map (the overlay is its only write path).  After
    every round each algorithm must agree with brute force over the
    independently tracked live dataset, and folding the overlay away with
    :meth:`GNNEngine.compact` must not change a single answer.
    """

    ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")

    @pytest.fixture()
    def mutable_engine(self, dataset, tmp_path):
        from repro.core.engine import GNNEngine

        if FLAT_MODE == "mmap":
            path = tmp_path / "mutation-base.npz"
            GNNEngine(dataset, capacity=16).snapshot().save(path)
            return GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        engine = GNNEngine(dataset, capacity=16)
        if FLAT_MODE == "memory":
            engine.snapshot()
        return engine

    def test_interleaved_mutation_rounds_agree_with_brute_force(
        self, mutable_engine, dataset
    ):
        engine = mutable_engine
        rng = np.random.default_rng(SEED + 21)
        live = {i: np.array(row) for i, row in enumerate(dataset)}
        groups = _shared_groups()
        for round_no in range(4):
            victims = rng.choice(sorted(live), size=12, replace=False)
            for rid in victims:
                assert engine.delete(live[int(rid)], int(rid)), round_no
                del live[int(rid)]
            for _ in range(9):
                point = rng.uniform(0, 1000, size=2)
                rid = engine.insert(point)
                assert rid not in live
                live[rid] = point
            ids = np.array(sorted(live), dtype=np.int64)
            points = np.vstack([live[int(i)] for i in ids])
            for group in groups:
                spec_base = QuerySpec(group=group, k=5)
                reference = brute_force_gnn(
                    points, spec_base.group_query(), record_ids=ids
                )
                for name in self.ALGORITHMS:
                    result = engine.execute(
                        QuerySpec(group=group, k=5, algorithm=name)
                    )
                    _assert_matches_reference(
                        result, reference, f"round {round_no} {name}"
                    )
        # Compaction folds the overlay into a fresh base without moving
        # one answer.
        before = [
            engine.execute(QuerySpec(group=group, k=5, algorithm=name))
            for group in groups
            for name in self.ALGORITHMS
        ]
        engine.compact()
        assert not engine.dirty
        after = [
            engine.execute(QuerySpec(group=group, k=5, algorithm=name))
            for group in groups
            for name in self.ALGORITHMS
        ]
        for first, second in zip(before, after):
            assert first.record_ids() == second.record_ids()
            assert first.distances() == second.distances()
