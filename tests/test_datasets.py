"""Tests for repro.datasets: synthetic generators, real-like stand-ins, workloads."""

import numpy as np
import pytest

from repro.datasets.real_like import PP_CARDINALITY, TS_CARDINALITY, pp_like, scaled_pair, ts_like
from repro.datasets.synthetic import (
    DEFAULT_WORKSPACE,
    gaussian_clusters,
    line_segments,
    uniform_points,
)
from repro.datasets.workload import (
    WorkloadSpec,
    generate_query_group,
    generate_request_trace,
    generate_workload,
    place_with_overlap,
    scale_into_workspace,
)
from repro.geometry.mbr import MBR


class TestSyntheticGenerators:
    def test_uniform_points_shape_and_bounds(self):
        points = uniform_points(500, seed=0)
        assert points.shape == (500, 2)
        low, high = DEFAULT_WORKSPACE
        assert points.min() >= low
        assert points.max() <= high

    def test_uniform_points_deterministic_by_seed(self):
        assert np.array_equal(uniform_points(50, seed=1), uniform_points(50, seed=1))
        assert not np.array_equal(uniform_points(50, seed=1), uniform_points(50, seed=2))

    def test_uniform_points_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            uniform_points(0)

    def test_gaussian_clusters_shape_and_bounds(self):
        points = gaussian_clusters(800, clusters=5, seed=0)
        assert points.shape == (800, 2)
        low, high = DEFAULT_WORKSPACE
        assert points.min() >= low and points.max() <= high

    def test_gaussian_clusters_are_more_clustered_than_uniform(self):
        # Compare mean nearest-neighbor distances: a clustered set has a much
        # smaller value than a uniform one of the same size.
        def mean_nn_distance(points):
            deltas = points[:, None, :] - points[None, :, :]
            distances = np.sqrt((deltas**2).sum(axis=2))
            np.fill_diagonal(distances, np.inf)
            return distances.min(axis=1).mean()

        clustered = gaussian_clusters(400, clusters=4, spread_fraction=0.01, seed=3)
        uniform = uniform_points(400, seed=3)
        assert mean_nn_distance(clustered) < 0.5 * mean_nn_distance(uniform)

    def test_gaussian_clusters_custom_weights(self):
        points = gaussian_clusters(200, clusters=2, cluster_weights=[0.9, 0.1], seed=4)
        assert points.shape == (200, 2)

    def test_gaussian_clusters_invalid_args(self):
        with pytest.raises(ValueError):
            gaussian_clusters(0)
        with pytest.raises(ValueError):
            gaussian_clusters(10, clusters=0)

    def test_line_segments_shape(self):
        points = line_segments(300, segments=10, seed=5)
        assert points.shape == (300, 2)

    def test_line_segments_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            line_segments(0)


class TestRealLikeDatasets:
    def test_default_cardinalities_match_the_paper(self):
        assert PP_CARDINALITY == 24_493
        assert TS_CARDINALITY == 194_971

    def test_pp_like_respects_count(self):
        points = pp_like(count=2_000)
        assert points.shape == (2_000, 2)

    def test_ts_like_respects_count(self):
        points = ts_like(count=3_000)
        assert points.shape == (3_000, 2)

    def test_generators_are_deterministic(self):
        assert np.array_equal(pp_like(count=500, seed=1), pp_like(count=500, seed=1))
        assert np.array_equal(ts_like(count=500, seed=1), ts_like(count=500, seed=1))

    def test_pp_like_is_clustered(self):
        points = pp_like(count=1_000)
        low, high = DEFAULT_WORKSPACE
        # Split the workspace into a 10x10 grid; a clustered distribution
        # leaves a substantial fraction of cells (nearly) empty.
        side = (high - low) / 10
        cells = np.floor((points - low) / side).astype(int)
        cells = np.clip(cells, 0, 9)
        occupancy = np.zeros((10, 10))
        for x, y in cells:
            occupancy[x, y] += 1
        assert (occupancy < 2).sum() > 20

    def test_too_small_counts_rejected(self):
        with pytest.raises(ValueError):
            pp_like(count=5)
        with pytest.raises(ValueError):
            ts_like(count=5)

    def test_scaled_pair_keeps_the_cardinality_ratio(self):
        pp, ts = scaled_pair(scale=0.02)
        ratio = len(ts) / len(pp)
        assert 4.0 < ratio < 12.0

    def test_scaled_pair_validates_scale(self):
        with pytest.raises(ValueError):
            scaled_pair(scale=0.0)


class TestWorkloadGeneration:
    def test_query_group_shape_and_extent(self):
        data_mbr = MBR([0.0, 0.0], [1000.0, 1000.0])
        rng = np.random.default_rng(0)
        group = generate_query_group(data_mbr, n=64, mbr_fraction=0.08, rng=rng)
        assert group.shape == (64, 2)
        group_mbr = MBR.from_points(group)
        assert data_mbr.contains(group_mbr)
        # The group's extent cannot exceed the requested square side.
        expected_side = np.sqrt(0.08 * data_mbr.area())
        assert group_mbr.extents.max() <= expected_side + 1e-9

    def test_query_group_invalid_parameters(self):
        data_mbr = MBR([0.0, 0.0], [10.0, 10.0])
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_query_group(data_mbr, n=0, mbr_fraction=0.1, rng=rng)
        with pytest.raises(ValueError):
            generate_query_group(data_mbr, n=4, mbr_fraction=0.0, rng=rng)

    def test_workload_has_requested_number_of_groups(self):
        data = uniform_points(500, seed=1)
        spec = WorkloadSpec(n=16, mbr_fraction=0.08, k=8, queries=7)
        workload = generate_workload(data, spec, seed=3)
        assert len(workload) == 7
        assert all(group.shape == (16, 2) for group in workload)

    def test_workload_is_deterministic_by_seed(self):
        data = uniform_points(500, seed=1)
        spec = WorkloadSpec(n=8, mbr_fraction=0.04, k=1, queries=3)
        first = generate_workload(data, spec, seed=5)
        second = generate_workload(data, spec, seed=5)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_spec_describe_mentions_parameters(self):
        spec = WorkloadSpec(n=64, mbr_fraction=0.08, k=8, queries=100)
        text = spec.describe()
        assert "n=64" in text and "8%" in text and "k=8" in text


class TestRequestTrace:
    """The seeded Poisson/Zipf serving trace generator."""

    @staticmethod
    def _trace(**overrides):
        data = uniform_points(800, seed=3)
        settings = dict(
            requests=300,
            rate_per_s=200.0,
            n=6,
            mbr_fraction=0.08,
            k=4,
            hotspots=8,
            zipf_exponent=2.0,
            seed=42,
        )
        settings.update(overrides)
        return data, generate_request_trace(data, **settings)

    def test_same_seed_reproduces_the_trace_exactly(self):
        _, first = self._trace()
        _, second = self._trace()
        assert len(first) == len(second) == 300
        for left, right in zip(first, second):
            assert left.arrival_s == right.arrival_s
            assert left.hotspot == right.hotspot
            assert np.array_equal(left.group, right.group)

    def test_different_seed_differs(self):
        _, first = self._trace()
        _, second = self._trace(seed=43)
        assert first[0].arrival_s != second[0].arrival_s

    def test_arrivals_are_increasing_at_roughly_the_requested_rate(self):
        _, trace = self._trace()
        arrivals = [request.arrival_s for request in trace]
        assert all(later > earlier for earlier, later in zip(arrivals, arrivals[1:]))
        # 300 arrivals at 200/s take ~1.5s; Poisson noise stays well
        # within a factor of two at this sample size.
        assert 0.75 < arrivals[-1] < 3.0

    def test_zipf_skews_traffic_toward_the_first_hotspots(self):
        _, trace = self._trace()
        counts = np.bincount([request.hotspot for request in trace], minlength=8)
        assert counts[0] > counts[-1]
        assert counts[0] >= 0.4 * len(trace)  # exponent 2.0 is heavily skewed

    def test_groups_have_requested_shape_inside_the_workspace(self):
        data, trace = self._trace()
        workspace = MBR.from_points(data)
        for request in trace[:50]:
            assert request.group.shape == (6, 2)
            assert request.k == 4
            assert workspace.contains(MBR.from_points(request.group))

    def test_invalid_parameters_rejected(self):
        data = uniform_points(100, seed=0)
        for overrides in (
            {"requests": 0},
            {"rate_per_s": 0.0},
            {"hotspots": 0},
            {"zipf_exponent": -1.0},
            {"n": 0},
            {"mbr_fraction": 0.0},
        ):
            settings = dict(
                requests=10, rate_per_s=10.0, n=2, mbr_fraction=0.1, k=1
            )
            settings.update(overrides)
            with pytest.raises(ValueError):
                generate_request_trace(data, **settings)

    def test_explicit_extent_confines_every_group(self):
        extent = MBR(np.array([200.0, 300.0]), np.array([400.0, 500.0]))
        _, trace = self._trace(extent=extent)
        for request in trace:
            assert extent.contains(MBR.from_points(request.group))

    def test_extent_accepts_a_low_high_pair(self):
        _, from_pair = self._trace(extent=([200.0, 300.0], [400.0, 500.0]))
        extent = MBR(np.array([200.0, 300.0]), np.array([400.0, 500.0]))
        _, from_mbr = self._trace(extent=extent)
        for left, right in zip(from_pair, from_mbr):
            assert np.array_equal(left.group, right.group)

    def test_extent_overrides_data_points(self):
        """When both are given, the extent wins — the trace ignores the
        dataset's bounding box entirely."""
        extent = MBR(np.array([0.0, 0.0]), np.array([10.0, 10.0]))
        _, trace = self._trace(extent=extent)
        for request in trace[:20]:
            assert request.group.max() <= 10.0

    def test_extent_only_needs_no_data_points(self):
        extent = MBR(np.array([0.0, 0.0]), np.array([100.0, 100.0]))
        trace = generate_request_trace(
            requests=20, rate_per_s=10.0, n=3, mbr_fraction=0.1, k=2,
            seed=5, extent=extent,
        )
        assert len(trace) == 20

    def test_neither_workspace_source_rejected(self):
        with pytest.raises(ValueError, match="workspace"):
            generate_request_trace(
                requests=10, rate_per_s=10.0, n=2, mbr_fraction=0.1, k=1
            )

    def test_default_path_is_seed_stable_without_extent(self):
        """The extent parameter must not perturb the default trace: the
        same seed consumes the RNG identically with extent omitted."""
        data, default_trace = self._trace()
        _, explicit = self._trace(extent=MBR.from_points(data))
        for left, right in zip(default_trace, explicit):
            assert left.arrival_s == right.arrival_s
            assert left.hotspot == right.hotspot
            assert np.array_equal(left.group, right.group)


class TestWorkspacePlacement:
    def test_scale_into_workspace_area_fraction(self):
        data = uniform_points(2_000, seed=7)
        queries = uniform_points(500, seed=8)
        scaled = scale_into_workspace(queries, data, area_fraction=0.08)
        data_mbr = MBR.from_points(data)
        scaled_mbr = MBR.from_points(scaled)
        assert data_mbr.contains(scaled_mbr)
        assert scaled_mbr.area() / data_mbr.area() == pytest.approx(0.08, rel=0.05)
        # Centres coincide.
        assert np.allclose(scaled_mbr.center, data_mbr.center, atol=1.0)

    def test_scale_into_workspace_invalid_fraction(self):
        data = uniform_points(100, seed=0)
        with pytest.raises(ValueError):
            scale_into_workspace(data, data, area_fraction=0.0)

    @pytest.mark.parametrize("overlap", [0.0, 0.25, 0.5, 1.0])
    def test_place_with_overlap_produces_requested_overlap(self, overlap):
        data = uniform_points(2_000, seed=9)
        queries = uniform_points(800, seed=10)
        placed = place_with_overlap(queries, data, overlap)
        data_mbr = MBR.from_points(data)
        placed_mbr = MBR.from_points(placed)
        measured = data_mbr.overlap_area(placed_mbr) / data_mbr.area()
        assert measured == pytest.approx(overlap, abs=0.03)

    def test_place_with_full_overlap_matches_data_workspace(self):
        data = uniform_points(1_000, seed=11)
        queries = uniform_points(300, seed=12)
        placed = place_with_overlap(queries, data, 1.0)
        assert MBR.from_points(data).contains(MBR.from_points(placed))

    def test_place_with_overlap_invalid_fraction(self):
        data = uniform_points(100, seed=0)
        with pytest.raises(ValueError):
            place_with_overlap(data, data, 1.5)
