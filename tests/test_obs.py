"""Tests for the observability layer: tracing, metrics, exposition, slow log.

The unit tests pin the span/metric primitives and the Prometheus text
renderer (validated with a tiny in-test parser — the repo takes no new
dependencies).  The integration tests enable observability around real
engines, servers and shard federations and pin the layer's core
contract: a query's span tree is *complete* (no orphan parents) and its
root attributes reconcile exactly with the engine's TreeStats counter
deltas and the result's reported cost.
"""

import io
import json
import urllib.request

import numpy as np
import pytest

from repro import GNNEngine, QuerySpec
from repro.obs import disable_all, enable_all, orphan_spans
from repro.obs import logging as obslog
from repro.obs import metrics as obsmetrics
from repro.obs import slowlog as obsslowlog
from repro.obs import trace as obstrace
from repro.obs.exposition import HttpExposition, render, render_dashboard, scrape_node
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    coordinator_collector,
    histogram_family,
    server_collector,
    tree_collector,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    Tracer,
    child_span,
    finish_span,
    span_duration_s,
    start_span,
)


@pytest.fixture(autouse=True)
def obs_reset():
    """Every test starts and ends with observability fully disabled."""
    disable_all()
    yield
    disable_all()


@pytest.fixture()
def rng():
    return np.random.default_rng(2024)


def parse_prometheus(text):
    """Tiny Prometheus text-format 0.0.4 parser (no new dependency).

    Returns ``(samples, types)`` where ``samples`` maps
    ``(name, sorted-label-tuple)`` to float values and ``types`` maps
    family names to their declared TYPE.
    """
    samples, types = {}, {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        if "{" in metric:
            name, _, body = metric.partition("{")
            pairs = []
            for part in body.rstrip("}").split(","):
                if part:
                    key, _, raw = part.partition("=")
                    pairs.append((key, raw.strip('"')))
            labels = tuple(sorted(pairs))
        else:
            name, labels = metric, ()
        samples[(name, labels)] = float(value)
    return samples, types


# ----------------------------------------------------------------------
# spans and the tracer (pure units)
# ----------------------------------------------------------------------
class TestSpans:
    def test_start_span_shape_and_root_semantics(self):
        span = start_span("query", k=3)
        assert span["parent_id"] is None
        assert span["end_s"] is None
        assert span["attrs"] == {"k": 3}
        assert span["trace_id"] and span["span_id"]
        finish_span(span, outcome="ok")
        assert span["end_s"] >= span["start_s"]
        assert span["attrs"]["outcome"] == "ok"
        assert span_duration_s(span) >= 0.0

    def test_duration_is_zero_while_open(self):
        assert span_duration_s(start_span("open")) == 0.0

    def test_child_span_joins_parent_trace(self):
        parent = start_span("root")
        child = child_span(parent, "step", phase=1)
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]
        assert child["span_id"] != parent["span_id"]

    def test_spans_pickle_roundtrip(self):
        import pickle

        span = finish_span(child_span(start_span("root"), "hop", shard=2))
        assert pickle.loads(pickle.dumps(span)) == span

    def test_tracer_tree_reassembly(self):
        tracer = Tracer()
        root = tracer.start("query")
        plan = tracer.start("query.plan", parent=root)
        tracer.finish(plan)
        execute = tracer.start("query.execute", parent=root)
        inner = tracer.start("query.inner", parent=execute)
        tracer.finish(inner)
        tracer.finish(execute)
        tracer.finish(root, outcome="ok")

        tree = tracer.tree(root["trace_id"])
        assert tree["name"] == "query"
        assert [child["name"] for child in tree["children"]] == [
            "query.plan",
            "query.execute",
        ]
        assert tree["children"][1]["children"][0]["name"] == "query.inner"
        assert tracer.trace_ids() == [root["trace_id"]]

    def test_tree_is_none_for_unknown_or_multi_root_traces(self):
        tracer = Tracer()
        assert tracer.tree("nope") is None
        first = tracer.finish(tracer.start("a"))
        second = finish_span(
            start_span("b", trace_id=first["trace_id"])
        )
        tracer.export(second)
        assert tracer.tree(first["trace_id"]) is None  # two roots

    def test_orphan_spans_flags_missing_parents(self):
        root = finish_span(start_span("root"))
        child = finish_span(child_span(root, "child"))
        lost = finish_span(
            start_span("lost", trace_id=root["trace_id"], parent_id="gone")
        )
        assert orphan_spans([root, child]) == []
        assert orphan_spans([root, child, lost]) == [lost]
        assert orphan_spans([child]) == [child]  # parent not shipped

    def test_ring_keeps_newest_spans(self):
        tracer = Tracer(ring=4)
        for index in range(10):
            tracer.export(finish_span(start_span(f"s{index}")))
        names = [span["name"] for span in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_jsonl_sink_writes_one_valid_line_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(jsonl_path=path)
        tracer.finish(tracer.start("query", k=1))
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "query"
        assert record["attrs"] == {"k": 1}

    def test_module_gate_and_context_manager(self):
        assert obstrace.get() is None
        tracer = obstrace.enable(ring=8)
        assert obstrace.get() is tracer
        obstrace.disable()
        assert obstrace.get() is None
        with obstrace.active(ring=8) as scoped:
            assert obstrace.get() is scoped
        assert obstrace.get() is None


# ----------------------------------------------------------------------
# metric primitives and the registry
# ----------------------------------------------------------------------
class TestMetricsPrimitives:
    def test_counter_monotonic(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_histogram_bucket_placement(self):
        histogram = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        state = histogram.state()
        assert state["buckets"] == [1, 1, 1, 1]  # last slot is +Inf overflow
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(5.555)

    def test_histogram_merge_state_adds_and_checks_shape(self):
        left = Histogram("h", buckets=(0.1, 1.0))
        right = Histogram("h", buckets=(0.1, 1.0))
        left.observe(0.05)
        right.observe(0.5)
        left.merge_state(right.state())
        assert left.state()["buckets"] == [1, 1, 0]
        assert left.count == 2
        with pytest.raises(ValueError):
            left.merge_state({"buckets": [1, 2], "sum": 0.0, "count": 1})

    def test_histogram_family_is_cumulative_with_inf(self):
        family = histogram_family("lat", (0.1, 1.0), [2, 3, 1], 4.2, 6)
        by_le = {
            sample.labels["le"]: sample.value
            for sample in family.samples
            if sample.name == "lat_bucket"
        }
        assert by_le == {"0.1": 2, "1.0": 5, "+Inf": 6}
        tail = {sample.name: sample.value for sample in family.samples[-2:]}
        assert tail == {"lat_sum": 4.2, "lat_count": 6}

    def test_registry_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "help")
        assert registry.counter("repro_x_total") is counter
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_registry_snapshot_merge_roundtrip(self):
        source = MetricsRegistry()
        source.counter("repro_a_total").inc(3)
        source.gauge("repro_b").set(2)
        source.histogram("repro_c_seconds").observe(0.02)

        target = MetricsRegistry()
        target.counter("repro_a_total").inc(1)
        target.merge(source.snapshot())
        target.merge(source.snapshot())

        snapshot = target.snapshot()
        assert snapshot["repro_a_total"] == 7  # 1 + 3 + 3
        assert snapshot["repro_b"] == 4  # gauges sum across workers
        assert snapshot["repro_c_seconds"]["count"] == 2

    def test_merge_rejects_unknown_histogram_with_foreign_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge({"repro_h": {"buckets": [1, 2], "sum": 0.0, "count": 1}})


class _FakeServer:
    def stats(self):
        return {
            "server": {
                "submitted": 5,
                "completed": 4,
                "failed": 1,
                "shed": 0,
                "swaps": 2,
                "pending": 3,
                "workers_alive": 2,
                "worker_deaths": 1,
            },
            "scheduler": {"queued": 1, "in_flight": 2, "epoch": 7},
            "total": {"node_accesses": 10, "largest_batch": 4},
        }

    def latency_seconds(self):
        return [0.0002, 0.004, 2.0]


class _FakeCoordinator:
    def stats(self):
        return {
            "queries": 9,
            "subqueries": 20,
            "shards_contacted": 20,
            "shards_pruned": 7,
            "retries": 2,
            "degraded_queries": 1,
            "failed_subqueries": 2,
            "breaker_trips": 1,
            "breaker_fast_fails": 3,
            "cost": {"algorithm": "mbm", "node_accesses": 40},
        }

    def breaker_states(self):
        return {(0, "127.0.0.1:9000"): "closed", (1, "127.0.0.1:9001"): "open"}


class TestCollectors:
    def test_tree_collector_tracks_live_engine_stats(self, rng):
        engine = GNNEngine(
            rng.uniform(0, 1000, size=(200, 2)), capacity=16, snapshot=False
        )
        registry = MetricsRegistry()
        registry.register(tree_collector(lambda: engine.tree.stats))
        engine.execute(QuerySpec(group=rng.uniform(400, 600, size=(4, 2)), k=2))
        samples, types = parse_prometheus(render(registry))
        assert types["repro_tree_node_accesses_total"] == "counter"
        assert (
            samples[("repro_tree_node_accesses_total", ())]
            == engine.tree.stats.node_accesses
            > 0
        )

    def test_server_collector_shapes(self):
        registry = MetricsRegistry()
        registry.register(server_collector(_FakeServer()))
        samples, types = parse_prometheus(render(registry))
        assert samples[("repro_serve_requests_total", (("outcome", "completed"),))] == 4
        assert samples[("repro_serve_requests_total", (("outcome", "shed"),))] == 0
        assert samples[("repro_serve_worker_deaths_total", ())] == 1
        assert samples[("repro_serve_pending", ())] == 3
        assert samples[("repro_serve_scheduler_epoch", ())] == 7
        assert samples[("repro_serve_worker_node_accesses_total", ())] == 10
        assert samples[("repro_serve_worker_largest_batch", ())] == 4
        assert types["repro_serve_worker_largest_batch"] == "gauge"
        assert types["repro_serve_latency_seconds"] == "histogram"
        assert samples[("repro_serve_latency_seconds_count", ())] == 3
        assert samples[("repro_serve_latency_seconds_bucket", (("le", "+Inf"),))] == 3

    def test_coordinator_collector_shapes(self):
        registry = MetricsRegistry()
        registry.register(coordinator_collector(_FakeCoordinator()))
        samples, types = parse_prometheus(render(registry))
        assert samples[("repro_shard_queries_total", ())] == 9
        assert samples[("repro_shard_retries_total", ())] == 2
        assert samples[("repro_shard_cost_node_accesses_total", ())] == 40
        # The non-numeric "algorithm" entry of the cost dict is skipped.
        assert not any(
            "algorithm" in name for (name, _labels) in samples
        )
        key = (
            "repro_shard_breaker_state",
            (("replica", "127.0.0.1:9001"), ("shard", "1")),
        )
        assert samples[key] == 2  # open
        assert types["repro_shard_breaker_state"] == "gauge"


# ----------------------------------------------------------------------
# rendering and the HTTP endpoint
# ----------------------------------------------------------------------
class TestExposition:
    def test_render_escapes_labels_and_formats_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_plain_total", "a help line").inc(2)

        def weird():
            return [
                MetricFamily(
                    "repro_weird",
                    "gauge",
                    "",
                    [Sample("repro_weird", {"path": 'a"b\nc\\d'}, 1.5)],
                )
            ]

        registry.register(weird)
        text = render(registry)
        assert '# HELP repro_plain_total a help line' in text
        assert 'path="a\\"b\\nc\\\\d"' in text
        samples, types = parse_prometheus(text)
        assert samples[("repro_plain_total", ())] == 2
        assert types["repro_plain_total"] == "counter"

    def test_http_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("repro_http_total").inc(5)
        exposition = HttpExposition(registry, stats_fn=lambda: {"answer": 42})
        try:
            with urllib.request.urlopen(exposition.url + "/metrics") as response:
                assert response.status == 200
                assert "0.0.4" in response.headers["Content-Type"]
                samples, _ = parse_prometheus(response.read().decode())
            assert samples[("repro_http_total", ())] == 5
            with urllib.request.urlopen(exposition.url + "/stats") as response:
                assert json.loads(response.read()) == {"answer": 42}
            with urllib.request.urlopen(exposition.url + "/healthz") as response:
                assert response.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(exposition.url + "/nope")
        finally:
            exposition.close()


# ----------------------------------------------------------------------
# slow-query log and structured logging
# ----------------------------------------------------------------------
class TestSlowLog:
    def test_fast_queries_are_observed_not_recorded(self, rng):
        log = SlowQueryLog(threshold_s=0.5)
        spec = QuerySpec(group=rng.uniform(0, 1, size=(3, 2)), k=1)
        assert log.observe(0.001, kind="engine", spec=spec) is None
        assert (log.observed, log.recorded) == (1, 0)
        assert log.entries() == []

    def test_slow_queries_record_structured_entries(self, rng, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_s=0.01, jsonl_path=path)
        spec = QuerySpec(group=rng.uniform(0, 1, size=(4, 2)), k=2, aggregate="max")
        record = log.observe(
            0.2,
            kind="coordinator",
            spec=spec,
            cost={"node_accesses": 7},
            trace_id="t-1",
            shards=[{"shard": 0, "elapsed_s": 0.1, "attempts": 2, "outcome": "ok"}],
            degraded=False,
        )
        assert record["latency_s"] == 0.2
        assert record["spec"]["group_size"] == 4
        assert record["spec"]["aggregate"] == "max"
        assert record["cost"] == {"node_accesses": 7}
        assert record["trace_id"] == "t-1"
        assert record["shards"][0]["attempts"] == 2
        assert record["degraded"] is False
        assert log.entries() == [record]
        log.close()
        assert json.loads(path.read_text().splitlines()[0]) == json.loads(
            json.dumps(record, default=str)
        )

    def test_ring_capacity_bounds_entries(self, rng):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for index in range(6):
            log.observe(0.01 * (index + 1), kind="engine", marker=index)
        assert [entry["marker"] for entry in log.entries()] == [3, 4, 5]
        assert log.recorded == 6


class TestStructuredLogging:
    def test_events_are_json_lines_on_the_stream(self):
        stream = io.StringIO()
        obslog.enable(stream=stream)
        obslog.get_logger("test.component").info("unit.tested", attempt=3)
        obslog.disable()
        record = json.loads(stream.getvalue().splitlines()[0])
        assert record["level"] == "info"
        assert record["component"] == "test.component"
        assert record["event"] == "unit.tested"
        assert record["attempt"] == 3
        assert record["ts"] > 0

    def test_disabled_logging_emits_nothing(self):
        stream = io.StringIO()
        obslog.enable(stream=stream)
        obslog.disable()
        obslog.get_logger("test.component").warning("dropped")
        assert stream.getvalue() == ""

    def test_enable_all_switches_every_subsystem(self):
        tracer, registry, slow = enable_all(log_stream=io.StringIO())
        assert obstrace.get() is tracer
        assert obsmetrics.get() is registry
        assert obsslowlog.get() is slow
        assert obslog.is_enabled()
        disable_all()
        assert obstrace.get() is None
        assert obsmetrics.get() is None
        assert obsslowlog.get() is None
        assert not obslog.is_enabled()


# ----------------------------------------------------------------------
# the pinned reconciliation contract
# ----------------------------------------------------------------------
class TestReconciliation:
    def test_query_span_reconciles_with_tree_stats_delta(self, rng):
        """The root span's counters == result.cost == TreeStats delta.

        This is the accounting contract the whole layer rests on: the
        trace reports exactly the work the index charged, no more, no
        less.
        """
        points = rng.uniform(0, 1000, size=(400, 2))
        engine = GNNEngine(points, capacity=16, snapshot=False)
        tracer, _, _ = enable_all(log_stream=io.StringIO())

        before = engine.tree.stats.snapshot()
        spec = QuerySpec(group=rng.uniform(300, 700, size=(5, 2)), k=3, algorithm="mbm")
        result = engine.execute(spec)
        after = engine.tree.stats.snapshot()

        assert result.trace_id is not None
        spans = tracer.spans(result.trace_id)
        assert orphan_spans(spans) == []
        tree = tracer.tree(result.trace_id)
        assert tree["name"] == "query"
        assert {child["name"] for child in tree["children"]} == {
            "query.plan",
            "query.execute",
        }

        attrs = tree["attrs"]
        delta = {
            key: after[key] - before[key]
            for key in ("node_accesses", "distance_computations")
        }
        assert attrs["outcome"] == "ok"
        assert attrs["node_accesses"] == result.cost.node_accesses
        assert attrs["node_accesses"] == delta["node_accesses"] > 0
        assert attrs["distance_computations"] == result.cost.distance_computations
        assert attrs["distance_computations"] == delta["distance_computations"] > 0

    def test_untraced_execution_attaches_no_trace_id(self, rng):
        engine = GNNEngine(rng.uniform(0, 1000, size=(100, 2)), capacity=16)
        result = engine.execute(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1))
        assert result.trace_id is None

    def test_slow_log_captures_engine_queries(self, rng):
        engine = GNNEngine(rng.uniform(0, 1000, size=(200, 2)), capacity=16)
        enable_all(slow_threshold_s=0.0, log_stream=io.StringIO())
        result = engine.execute(
            QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=2)
        )
        entries = obsslowlog.get().entries()
        assert len(entries) == 1
        assert entries[0]["kind"] == "query"
        assert entries[0]["trace_id"] == result.trace_id
        assert entries[0]["cost"]["node_accesses"] == result.cost.node_accesses


# ----------------------------------------------------------------------
# serving integration: traces cross the worker boundary
# ----------------------------------------------------------------------
class TestServingIntegration:
    @pytest.fixture()
    def snapshot_path(self, rng, tmp_path):
        engine = GNNEngine(rng.uniform(0, 1000, size=(300, 2)), capacity=16)
        path = tmp_path / "snapshot-gen000000.npz"
        engine.snapshot().save(path, generation=0)
        return path

    def test_served_query_yields_complete_span_tree(self, snapshot_path, rng):
        from repro.serve import GNNServer

        tracer, _, slow = enable_all(
            slow_threshold_s=0.0, log_stream=io.StringIO()
        )
        with GNNServer(snapshot_path, workers=1, window_s=0.001) as server:
            spec = QuerySpec(group=rng.uniform(200, 800, size=(4, 2)), k=2)
            result = server.submit(spec).result(timeout=60)
        assert result.trace_id is not None
        spans = tracer.spans(result.trace_id)
        assert orphan_spans(spans) == []
        tree = tracer.tree(result.trace_id)
        assert tree["name"] == "serve.request"
        assert tree["attrs"]["outcome"] == "ok"
        worker_spans = [span for span in spans if span["name"] == "serve.worker"]
        assert len(worker_spans) == 1
        assert worker_spans[0]["parent_id"] == tree["span_id"]
        assert worker_spans[0]["attrs"]["node_accesses"] >= 0
        assert worker_spans[0]["attrs"]["queue_wait_s"] >= 0.0
        # The serving front feeds the slow-query log with the measured
        # request latency and the trace id of the span tree above.
        serve_entries = [
            entry for entry in slow.entries() if entry["kind"] == "serve"
        ]
        assert len(serve_entries) == 1
        assert serve_entries[0]["trace_id"] == result.trace_id
        assert serve_entries[0]["cost"]["algorithm"] == result.cost.algorithm

    def test_server_exposition_scrapes_mid_traffic(self, snapshot_path, rng):
        from repro.serve import GNNServer

        with GNNServer(snapshot_path, workers=1, window_s=0.001) as server:
            specs = [
                QuerySpec(group=rng.uniform(200, 800, size=(3, 2)), k=1)
                for _ in range(8)
            ]
            futures = [server.submit(spec) for spec in specs]
            host, port = server.start_exposition()
            # Idempotent: a second call reuses the listener.
            assert server.start_exposition() == (host, port)
            url = f"http://{host}:{port}"
            for future in futures:
                future.result(timeout=60)
            with urllib.request.urlopen(url + "/metrics") as response:
                samples, types = parse_prometheus(response.read().decode())
            with urllib.request.urlopen(url + "/stats") as response:
                stats = json.loads(response.read())
        assert types["repro_serve_requests_total"] == "counter"
        completed = samples[
            ("repro_serve_requests_total", (("outcome", "completed"),))
        ]
        assert completed == 8
        assert samples[("repro_serve_latency_seconds_count", ())] == 8
        assert stats["server"]["completed"] == 8


# ----------------------------------------------------------------------
# sharding integration: traces cross the federation, STATS scrapes work
# ----------------------------------------------------------------------
class TestShardIntegration:
    @pytest.fixture()
    def federation(self, rng, tmp_path):
        from repro.shard import ShardNode, ShardedEngine, partition_dataset

        points = rng.uniform(0, 1000, size=(400, 2))
        manifest = partition_dataset(points, 2, tmp_path / "shards", capacity=16)
        nodes = [
            ShardNode(shard.shard_id, tmp_path / "shards" / shard.path, workers=1)
            for shard in manifest.shards
        ]
        addresses = [node.start() for node in nodes]
        engine = ShardedEngine.connect(manifest, addresses, timeout_s=30.0)
        yield engine, nodes, addresses
        engine.close()
        for node in nodes:
            node.close()

    def test_federated_query_yields_complete_span_tree(self, federation, rng):
        engine, _nodes, _addresses = federation
        tracer, _, _ = enable_all(log_stream=io.StringIO())
        spec = QuerySpec(group=rng.uniform(100, 900, size=(4, 2)), k=3)
        result = engine.execute(spec)

        assert result.trace_id is not None
        spans = tracer.spans(result.trace_id)
        assert orphan_spans(spans) == []
        tree = tracer.tree(result.trace_id)
        assert tree["name"] == "shard.query"
        assert tree["attrs"]["outcome"] == "ok"
        names = {span["name"] for span in spans}
        assert {"shard.route", "shard.dispatch", "shard.attempt", "shard.merge"} <= names
        # Worker-side spans crossed two process hops and still parent up.
        assert "serve.request" in names
        assert "serve.worker" in names
        attempts = [span for span in spans if span["name"] == "shard.attempt"]
        assert all(span["attrs"]["attempt"] >= 1 for span in attempts)
        # The root reconciles with the merged cost the coordinator reports.
        assert tree["attrs"]["node_accesses"] == result.cost.node_accesses

    def test_stats_wire_op_and_node_exposition(self, federation, rng):
        engine, nodes, addresses = federation
        engine.execute(QuerySpec(group=rng.uniform(100, 900, size=(3, 2)), k=1))

        payload = scrape_node(addresses[0])
        assert payload["shard_id"] == 0
        assert "generation" in payload
        assert payload["stats"]["shard"]["shard_id"] == 0
        assert "metrics" not in payload  # no registry attached yet

        http_host, http_port = nodes[0].start_exposition()
        payload = scrape_node(f"{addresses[0][0]}:{addresses[0][1]}")
        samples, _ = parse_prometheus(payload["metrics"])
        assert ("repro_serve_submitted_total", ()) in samples
        with urllib.request.urlopen(
            f"http://{http_host}:{http_port}/metrics"
        ) as response:
            http_samples, _ = parse_prometheus(response.read().decode())
        assert ("repro_serve_submitted_total", ()) in http_samples

        dashboard = render_dashboard(
            [(f"{addresses[0][0]}:{addresses[0][1]}", payload)]
        )
        assert "shard 0" in dashboard
        assert "requests:" in dashboard
        unreachable = render_dashboard([("gone:1", ConnectionError("refused"))])
        assert "UNREACHABLE" in unreachable
