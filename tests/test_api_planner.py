"""Tests for the algorithm registry and the query planner."""

import numpy as np
import pytest

from repro.api import (
    AlgorithmInfo,
    QueryPlanner,
    QuerySpec,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.planner import AUTO_FMQM_MAX_BLOCKS
from repro.core.types import GNNResult
from repro.storage.pointfile import PointFile


GROUP = [[100.0, 100.0], [200.0, 150.0], [150.0, 300.0]]


class TestRegistry:
    def test_builtins_are_registered(self):
        names = {info.name for info in available_algorithms()}
        assert {"mqm", "spm", "mbm", "best-first", "brute-force", "fmqm", "fmbm", "gcp"} <= names

    def test_residency_filter(self):
        memory = {info.name for info in available_algorithms("memory")}
        disk = {info.name for info in available_algorithms("disk")}
        assert "mbm" in memory and "mbm" not in disk
        assert "fmbm" in disk and "fmbm" not in memory

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown algorithm 'quantum'.*mbm"):
            get_algorithm("quantum")

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("MBM").name == "mbm"

    def test_duplicate_registration_rejected(self):
        info = get_algorithm("mbm")
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(info)

    def test_custom_algorithm_can_register_and_plan(self):
        def runner(context, request):
            return GNNResult()

        info = AlgorithmInfo(
            name="my-scan",
            runner=runner,
            residency="memory",
            aggregates=("sum", "max", "min"),
            supports_weights=True,
            description="test-only scan",
        )
        register_algorithm(info)
        try:
            plan = QueryPlanner().plan(QuerySpec(group=GROUP, algorithm="my-scan"))
            assert plan.algorithm.name == "my-scan"
            assert "explicitly requested" in plan.rationale
        finally:
            unregister_algorithm("my-scan")

    def test_invalid_residency_rejected_at_registration(self):
        info = AlgorithmInfo(name="bad", runner=lambda c, r: None, residency="cloud")
        with pytest.raises(ValueError, match="residency"):
            register_algorithm(info)


class TestCapabilityChecks:
    def test_mbm_rejects_max_aggregate(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="mbm.*supports aggregates.*'max'"):
            planner.plan(QuerySpec(group=GROUP, algorithm="mbm", aggregate="max"))

    def test_mqm_rejects_weighted_queries(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="mqm does not support weighted"):
            planner.plan(QuerySpec(group=GROUP, algorithm="mqm", weights=[1.0, 2.0, 3.0]))

    def test_memory_algorithm_rejects_disk_residency(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="mbm handles memory-resident"):
            planner.plan(QuerySpec(group=GROUP, algorithm="mbm", residency="disk"))

    def test_disk_algorithm_rejects_memory_residency(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="fmbm handles disk-resident"):
            planner.plan(QuerySpec(group=GROUP, algorithm="fmbm", residency="memory"))

    def test_memory_algorithm_needs_raw_points(self, rng):
        file = PointFile(rng.uniform(0, 1, size=(30, 2)), points_per_page=10, block_pages=1)
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="mbm needs the raw query points"):
            planner.plan(QuerySpec(group_file=file, residency="memory", algorithm="mbm"))

    def test_unknown_option_rejected_at_plan_time(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="does not understand option.*use_heuristic_3"):
            planner.plan(
                QuerySpec(group=GROUP, algorithm="mbm", options={"use_heuristic_3": False})
            )

    def test_unknown_option_error_lists_valid_names_and_suggests(self):
        """The plan-time error must name every valid option for the
        chosen algorithm, suggest the closest match for the offender,
        and mention the always-accepted file-geometry options."""
        planner = QueryPlanner()
        with pytest.raises(ValueError) as excinfo:
            planner.plan(
                QuerySpec(group=GROUP, algorithm="mbm", options={"use_heuristic_3": False})
            )
        message = str(excinfo.value)
        assert "'traversal'" in message and "'use_heuristic3'" in message
        assert "did you mean" in message and "use_heuristic3" in message
        assert "points_per_page" in message and "block_pages" in message

    def test_unknown_option_error_for_optionless_algorithm(self):
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="takes no algorithm options"):
            planner.plan(
                QuerySpec(group=GROUP, algorithm="mqm", options={"window": 3})
            )

    def test_gcp_needs_raw_points(self, rng):
        file = PointFile(rng.uniform(0, 1, size=(30, 2)), points_per_page=10, block_pages=1)
        planner = QueryPlanner()
        with pytest.raises(ValueError, match="gcp needs the raw query points"):
            planner.plan(QuerySpec(group_file=file, algorithm="gcp"))

    def test_candidates_reflect_capabilities(self):
        planner = QueryPlanner()
        sum_names = {info.name for info in planner.candidates(QuerySpec(group=GROUP))}
        max_names = {
            info.name
            for info in planner.candidates(QuerySpec(group=GROUP, aggregate="max"))
        }
        assert "mbm" in sum_names and "mqm" in sum_names
        assert max_names <= {"best-first", "brute-force"}


class TestAutoPolicy:
    def test_memory_sum_chooses_mbm(self):
        plan = QueryPlanner().plan(QuerySpec(group=GROUP))
        assert plan.algorithm.name == "mbm"
        assert "overall winner" in plan.rationale

    @pytest.mark.parametrize("aggregate", ["max", "min"])
    def test_memory_other_aggregates_choose_best_first(self, aggregate):
        plan = QueryPlanner().plan(QuerySpec(group=GROUP, aggregate=aggregate))
        assert plan.algorithm.name == "best-first"
        assert aggregate in plan.rationale

    def test_memory_weighted_chooses_best_first(self):
        plan = QueryPlanner().plan(QuerySpec(group=GROUP, weights=[1.0, 2.0, 3.0]))
        assert plan.algorithm.name == "best-first"
        assert "weighted" in plan.rationale

    def test_disk_few_blocks_chooses_fmqm(self, rng):
        file = PointFile(rng.uniform(0, 1, size=(100, 2)), points_per_page=50, block_pages=10)
        assert file.block_count <= AUTO_FMQM_MAX_BLOCKS
        plan = QueryPlanner().plan(QuerySpec(group_file=file))
        assert plan.algorithm.name == "fmqm"
        assert "F-MQM" in plan.rationale

    def test_disk_many_blocks_chooses_fmbm(self, rng):
        file = PointFile(rng.uniform(0, 1, size=(600, 2)), points_per_page=50, block_pages=1)
        assert file.block_count > AUTO_FMQM_MAX_BLOCKS
        plan = QueryPlanner().plan(QuerySpec(group_file=file))
        assert plan.algorithm.name == "fmbm"
        assert "F-MBM" in plan.rationale

    def test_disk_block_count_estimated_from_geometry(self, rng):
        # 600 points at 50/page, 1 page/block -> 12 blocks, no file needed.
        spec = QuerySpec(
            group=rng.uniform(0, 1, size=(600, 2)),
            residency="disk",
            options={"points_per_page": 50, "block_pages": 1},
        )
        assert QueryPlanner().plan(spec).algorithm.name == "fmbm"

    def test_file_geometry_options_are_not_forwarded_to_runners(self, rng):
        spec = QuerySpec(
            group=rng.uniform(0, 1, size=(600, 2)),
            residency="disk",
            options={"points_per_page": 50, "block_pages": 1},
        )
        plan = QueryPlanner().plan(spec)
        assert "points_per_page" not in plan.options
        assert "block_pages" not in plan.options


class TestExplainAndEstimates:
    def test_describe_mentions_algorithm_and_rationale(self, engine):
        plan = engine.explain(QuerySpec(group=GROUP, k=4))
        text = plan.describe()
        assert "mbm" in text
        assert "rationale" in text
        assert "overall winner" in text
        assert "estimate" in text

    def test_estimate_requires_an_engine(self):
        assert QueryPlanner().plan(QuerySpec(group=GROUP)).estimate is None

    def test_estimate_scales_with_mqm_cardinality(self, engine, rng):
        group = rng.uniform(200, 800, size=(16, 2))
        planner = engine.planner
        mqm_plan = planner.plan(QuerySpec(group=group, algorithm="mqm"))
        mbm_plan = planner.plan(QuerySpec(group=group, algorithm="mbm"))
        assert mqm_plan.estimate.node_accesses > mbm_plan.estimate.node_accesses

    def test_brute_force_estimate_counts_the_scan(self, engine):
        plan = engine.explain(QuerySpec(group=GROUP, algorithm="brute-force"))
        assert plan.estimate.node_accesses == 0
        assert plan.estimate.distance_computations == len(engine.points) * 3

    def test_trace_attaches_plan_to_result(self, engine):
        result = engine.execute(QuerySpec(group=GROUP, trace=True))
        assert result.plan is not None
        assert result.plan.algorithm.name == "mbm"
        untraced = engine.execute(QuerySpec(group=GROUP))
        assert untraced.plan is None

    def test_plan_signature_reuses_cached_plans(self, engine, rng):
        specs = [QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=2) for _ in range(5)]
        signatures = {spec.plan_signature() for spec in specs}
        assert len(signatures) == 1
