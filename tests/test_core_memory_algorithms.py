"""Correctness tests for the memory-resident algorithms: MQM, SPM, MBM.

Every algorithm is validated against the brute-force baseline over a
diverse set of query groups (the ``query_groups`` fixture) and against
the paper's qualitative claims about their costs.
"""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_gnn
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery


def _check_against_bruteforce(algorithm, tree, points, group, k, **kwargs):
    query = GroupQuery(group, k=k)
    result = algorithm(tree, query, **kwargs)
    expected = brute_force_gnn(points, GroupQuery(group, k=k))
    assert result.distances() == pytest.approx(expected.distances()), (
        f"{algorithm.__name__} returned wrong distances for k={k}"
    )
    return result


class TestMQM:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, small_tree, small_points, query_groups, k):
        for group in query_groups:
            _check_against_bruteforce(mqm, small_tree, small_points, group, k)

    def test_k_larger_than_dataset(self, small_tree, small_points):
        group = np.array([[100.0, 100.0], [200.0, 300.0]])
        query = GroupQuery(group, k=len(small_points) + 10)
        result = mqm(small_tree, query)
        assert len(result.neighbors) == len(small_points)

    def test_rejects_non_sum_aggregates(self, small_tree):
        with pytest.raises(ValueError):
            mqm(small_tree, GroupQuery([[0.0, 0.0]], aggregate="max"))

    def test_rejects_weighted_queries(self, small_tree):
        with pytest.raises(ValueError):
            mqm(small_tree, GroupQuery([[0.0, 0.0], [1.0, 1.0]], weights=[1.0, 2.0]))

    def test_empty_tree(self):
        from repro.rtree.tree import RTree

        result = mqm(RTree(), GroupQuery([[0.0, 0.0]]))
        assert result.neighbors == []

    def test_cost_grows_with_query_cardinality(self, small_tree, rng):
        small = rng.uniform(300, 700, size=(4, 2))
        large = rng.uniform(300, 700, size=(64, 2))
        cost_small = mqm(small_tree, GroupQuery(small, k=1)).cost
        cost_large = mqm(small_tree, GroupQuery(large, k=1)).cost
        assert cost_large.node_accesses > cost_small.node_accesses


class TestSPM:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_best_first_matches_brute_force(self, small_tree, small_points, query_groups, k):
        for group in query_groups:
            _check_against_bruteforce(spm, small_tree, small_points, group, k)

    @pytest.mark.parametrize("k", [1, 5])
    def test_depth_first_matches_brute_force(self, small_tree, small_points, query_groups, k):
        for group in query_groups:
            _check_against_bruteforce(
                spm, small_tree, small_points, group, k, traversal="depth_first"
            )

    @pytest.mark.parametrize("centroid_method", ["gradient", "weiszfeld", "mean"])
    def test_any_centroid_backend_is_exact(
        self, small_tree, small_points, query_groups, centroid_method
    ):
        # Lemma 1 holds for an arbitrary reference point, so SPM stays exact
        # regardless of how good the centroid approximation is.
        for group in query_groups[:4]:
            _check_against_bruteforce(
                spm, small_tree, small_points, group, 2, centroid_method=centroid_method
            )

    def test_unknown_traversal_rejected(self, small_tree):
        with pytest.raises(ValueError):
            spm(small_tree, GroupQuery([[0.0, 0.0]]), traversal="sideways")

    def test_rejects_non_sum_aggregates(self, small_tree):
        with pytest.raises(ValueError):
            spm(small_tree, GroupQuery([[0.0, 0.0]], aggregate="min"))

    def test_empty_tree(self):
        from repro.rtree.tree import RTree

        assert spm(RTree(), GroupQuery([[0.0, 0.0]])).neighbors == []

    def test_node_accesses_do_not_explode_with_n(self, small_tree, rng):
        # The paper: the cardinality of Q has little effect on SPM's NA.
        small = rng.uniform(300, 700, size=(4, 2))
        large = rng.uniform(300, 700, size=(256, 2))
        na_small = spm(small_tree, GroupQuery(small, k=1)).cost.node_accesses
        na_large = spm(small_tree, GroupQuery(large, k=1)).cost.node_accesses
        assert na_large <= na_small * 5


class TestMBM:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_best_first_matches_brute_force(self, small_tree, small_points, query_groups, k):
        for group in query_groups:
            _check_against_bruteforce(mbm, small_tree, small_points, group, k)

    @pytest.mark.parametrize("k", [1, 5])
    def test_depth_first_matches_brute_force(self, small_tree, small_points, query_groups, k):
        for group in query_groups:
            _check_against_bruteforce(
                mbm, small_tree, small_points, group, k, traversal="depth_first"
            )

    def test_heuristic2_only_variant_is_still_exact(
        self, small_tree, small_points, query_groups
    ):
        for group in query_groups:
            _check_against_bruteforce(
                mbm, small_tree, small_points, group, 3, use_heuristic3=False
            )

    def test_heuristic3_reduces_node_accesses(self, small_tree, rng):
        # Footnote 3 of the paper: heuristic 3 gives MBM its edge; disabling
        # it should never reduce the number of node accesses.
        group = rng.uniform(200, 800, size=(32, 2))
        with_h3 = mbm(small_tree, GroupQuery(group, k=4)).cost.node_accesses
        without_h3 = mbm(
            small_tree, GroupQuery(group, k=4), use_heuristic3=False
        ).cost.node_accesses
        assert with_h3 <= without_h3

    def test_weighted_query_matches_brute_force(self, small_tree, small_points, rng):
        group = rng.uniform(200, 800, size=(6, 2))
        weights = rng.uniform(0.5, 3.0, size=6)
        query = GroupQuery(group, k=4, weights=weights)
        result = mbm(small_tree, query)
        expected = brute_force_gnn(small_points, GroupQuery(group, k=4, weights=weights))
        assert result.distances() == pytest.approx(expected.distances())

    @pytest.mark.parametrize("aggregate", ["max", "min"])
    def test_other_aggregates_match_brute_force(
        self, small_tree, small_points, rng, aggregate
    ):
        group = rng.uniform(200, 800, size=(8, 2))
        query = GroupQuery(group, k=3, aggregate=aggregate)
        result = mbm(small_tree, query)
        expected = brute_force_gnn(small_points, GroupQuery(group, k=3, aggregate=aggregate))
        assert result.distances() == pytest.approx(expected.distances())

    def test_unknown_traversal_rejected(self, small_tree):
        with pytest.raises(ValueError):
            mbm(small_tree, GroupQuery([[0.0, 0.0]]), traversal="bottom_up")

    def test_empty_tree(self):
        from repro.rtree.tree import RTree

        assert mbm(RTree(), GroupQuery([[0.0, 0.0]])).neighbors == []

    def test_node_accesses_at_most_spm(self, small_tree, rng):
        # The paper's overall conclusion for memory-resident queries: MBM is
        # the most efficient method.  Check it holds on average over several
        # query groups (individual queries may tie).
        total_mbm = 0
        total_spm = 0
        for _ in range(10):
            group = rng.uniform(100, 900, size=(16, 2))
            total_mbm += mbm(small_tree, GroupQuery(group, k=8)).cost.node_accesses
            total_spm += spm(small_tree, GroupQuery(group, k=8)).cost.node_accesses
        assert total_mbm <= total_spm * 1.1


class TestCrossAlgorithmAgreement:
    def test_all_three_algorithms_agree(self, small_tree, query_groups):
        for group in query_groups:
            query_k = 6
            results = [
                algorithm(small_tree, GroupQuery(group, k=query_k))
                for algorithm in (mqm, spm, mbm)
            ]
            reference = results[0].distances()
            for result in results[1:]:
                assert result.distances() == pytest.approx(reference)

    def test_results_are_deterministic(self, small_tree, rng):
        group = rng.uniform(0, 1000, size=(10, 2))
        first = mbm(small_tree, GroupQuery(group, k=5))
        second = mbm(small_tree, GroupQuery(group, k=5))
        assert first.record_ids() == second.record_ids()
        assert first.distances() == pytest.approx(second.distances())
