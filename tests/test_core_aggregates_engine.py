"""Tests for repro.core.aggregates and the GNNEngine facade."""

import numpy as np
import pytest

from repro.core.aggregates import aggregate_gnn, group_nn_stream
from repro.core.bruteforce import brute_force_gnn
from repro.core.engine import GNNEngine
from repro.core.types import GroupQuery


class TestGroupNNStream:
    def test_stream_yields_ascending_group_distances(self, small_tree, rng):
        group = rng.uniform(200, 800, size=(6, 2))
        stream = group_nn_stream(small_tree, GroupQuery(group))
        distances = [next(stream).distance for _ in range(25)]
        assert distances == sorted(distances)

    def test_stream_prefix_matches_brute_force(self, small_tree, small_points, rng):
        group = rng.uniform(200, 800, size=(5, 2))
        stream = group_nn_stream(small_tree, GroupQuery(group))
        prefix = [next(stream) for _ in range(10)]
        expected = brute_force_gnn(small_points, GroupQuery(group, k=10))
        assert [n.distance for n in prefix] == pytest.approx(expected.distances())

    def test_stream_enumerates_whole_dataset(self, small_tree, small_points, rng):
        group = rng.uniform(0, 1000, size=(3, 2))
        stream = group_nn_stream(small_tree, GroupQuery(group))
        assert len(list(stream)) == len(small_points)


class TestAggregateGNN:
    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_matches_brute_force(self, small_tree, small_points, rng, aggregate):
        group = rng.uniform(100, 900, size=(7, 2))
        query = GroupQuery(group, k=5, aggregate=aggregate)
        result = aggregate_gnn(small_tree, query)
        expected = brute_force_gnn(small_points, GroupQuery(group, k=5, aggregate=aggregate))
        assert result.distances() == pytest.approx(expected.distances())

    def test_weighted_sum_matches_brute_force(self, small_tree, small_points, rng):
        group = rng.uniform(100, 900, size=(4, 2))
        weights = rng.uniform(0.2, 5.0, size=4)
        query = GroupQuery(group, k=3, weights=weights)
        result = aggregate_gnn(small_tree, query)
        expected = brute_force_gnn(
            small_points, GroupQuery(group, k=3, weights=weights)
        )
        assert result.distances() == pytest.approx(expected.distances())

    def test_cost_algorithm_label_mentions_aggregate(self, small_tree, rng):
        group = rng.uniform(100, 900, size=(3, 2))
        result = aggregate_gnn(small_tree, GroupQuery(group, aggregate="max"))
        assert "max" in result.cost.algorithm


class TestEngineMemoryQueries:
    def test_auto_uses_mbm_for_sum(self, engine, rng):
        result = engine.query(rng.uniform(200, 800, size=(5, 2)), k=2)
        assert result.cost.algorithm.startswith("MBM")

    def test_auto_uses_best_first_for_other_aggregates(self, engine, rng):
        result = engine.query(rng.uniform(200, 800, size=(5, 2)), k=2, aggregate="max")
        assert "best-first" in result.cost.algorithm

    @pytest.mark.parametrize("algorithm", ["mqm", "spm", "mbm", "best-first", "brute-force"])
    def test_every_algorithm_gives_the_same_answer(self, engine, rng, algorithm):
        group = rng.uniform(100, 900, size=(8, 2))
        reference = engine.query(group, k=4, algorithm="brute-force")
        result = engine.query(group, k=4, algorithm=algorithm)
        assert result.distances() == pytest.approx(reference.distances())

    def test_unknown_algorithm_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query([[0.0, 0.0]], algorithm="quantum")

    def test_options_are_forwarded(self, engine, rng):
        group = rng.uniform(100, 900, size=(6, 2))
        result = engine.query(group, k=2, algorithm="spm", traversal="depth_first")
        assert "depth_first" in result.cost.algorithm

    def test_engine_length(self, engine, small_points):
        assert len(engine) == len(small_points)


class TestEngineDiskQueries:
    def test_auto_prefers_fmqm_for_few_blocks(self, engine, rng):
        queries = rng.uniform(300, 700, size=(200, 2))
        result = engine.query_disk(queries, k=2, block_pages=10)
        assert result.cost.algorithm == "F-MQM"

    def test_auto_prefers_fmbm_for_many_blocks(self, engine, rng):
        queries = rng.uniform(300, 700, size=(600, 2))
        result = engine.query_disk(queries, k=2, block_pages=1, points_per_page=50)
        assert result.cost.algorithm == "F-MBM"

    @pytest.mark.parametrize("algorithm", ["fmqm", "fmbm", "gcp"])
    def test_disk_algorithms_agree_with_memory_result(self, engine, rng, algorithm):
        queries = rng.uniform(300, 700, size=(150, 2))
        memory = engine.query(queries, k=3, algorithm="brute-force")
        disk = engine.query_disk(queries, k=3, algorithm=algorithm, block_pages=2)
        assert disk.distances() == pytest.approx(memory.distances())

    def test_existing_query_file_can_be_passed(self, engine, rng):
        from repro.storage.pointfile import PointFile

        queries = rng.uniform(300, 700, size=(120, 2))
        query_file = PointFile(queries, points_per_page=20, block_pages=2)
        result = engine.query_disk(query_file=query_file, k=1, algorithm="fmbm")
        reference = engine.query(queries, k=1, algorithm="brute-force")
        assert result.distances() == pytest.approx(reference.distances())

    def test_missing_input_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query_disk(algorithm="fmbm")

    def test_gcp_requires_raw_points(self, engine, rng):
        from repro.storage.pointfile import PointFile

        queries = rng.uniform(300, 700, size=(60, 2))
        with pytest.raises(ValueError):
            engine.query_disk(
                query_file=PointFile(queries, points_per_page=20, block_pages=2),
                algorithm="gcp",
            )

    def test_unknown_disk_algorithm_rejected(self, engine, rng):
        with pytest.raises(ValueError):
            engine.query_disk(rng.uniform(0, 1, size=(10, 2)), algorithm="hash-join")


class TestEngineMaintenance:
    def test_insert_extends_the_dataset(self, small_points):
        engine = GNNEngine(small_points[:100], capacity=8)
        new_id = engine.insert([123.0, 456.0])
        assert new_id == 100
        assert len(engine) == 101
        # The new point must be findable as the best neighbor of a query
        # group sitting right on top of it.
        result = engine.query(np.array([[123.0, 456.0], [123.5, 456.5]]), k=1)
        assert result.best.record_id == 100

    def test_buffer_pages_enable_page_fault_accounting(self, small_points, rng):
        engine = GNNEngine(small_points, capacity=8, buffer_pages=10_000)
        group = rng.uniform(200, 800, size=(8, 2))
        engine.query(group, k=2)
        second = engine.query(group, k=2)
        # Second identical query hits the warm buffer: no new page faults.
        assert second.cost.page_faults == 0
        assert second.cost.node_accesses > 0
