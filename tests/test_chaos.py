"""Chaos conformance: injected faults, failover, and exact counters.

A federation's failure handling is only trustworthy if its behaviour
under faults is *pinned*, not just survived — so these tests drive the
serving and sharding layers through seeded
:class:`~repro.testing.faults.FaultPlan` schedules (worker kills,
dropped and delayed frames, dead and restarted nodes) and assert:

* no acknowledged result is lost: every submitted future resolves —
  with a correct answer or a typed, retryable error — never hangs;
* degraded results are never wrong answers presented as complete:
  contacted shards' neighbours are bit-identical to a single-index
  engine restricted to those shards;
* :class:`CoordinatorStats` counters are **exact** under an injected
  plan — retries, failed sub-queries, breaker trips and fast-fails all
  land on the pinned numbers, including the breaker re-closing after a
  node restart (the health monitor's re-admission path).

``REPRO_CHAOS_SEED`` (CI runs a small seed matrix) seeds the fault
plans; any single seed reproduces exactly.
"""

import os
import time

import numpy as np
import pytest

from repro import GNNEngine, QuerySpec
from repro.serve import GNNServer, WorkerDiedError
from repro.shard import (
    CircuitBreaker,
    ShardCoordinator,
    ShardNode,
    ShardUnavailableError,
    partition_dataset,
)
from repro.obs import orphan_spans
from repro.obs import trace as obs_trace
from repro.shard.health import CLOSED, HALF_OPEN, OPEN
from repro.testing import faults
from repro.testing.faults import FaultError, FaultPlan, InjectedCrash

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends with fault injection disarmed."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def chaos_points():
    generator = np.random.default_rng(1789)
    clusters = generator.uniform(100, 900, size=(6, 2))
    assignments = generator.integers(0, 6, size=600)
    noise = generator.normal(scale=60.0, size=(600, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="module")
def reference_engine(chaos_points):
    return GNNEngine(chaos_points, capacity=16)


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, reference_engine):
    path = tmp_path_factory.mktemp("chaos-snap") / "snapshot.npz"
    reference_engine.snapshot().save(path, generation=0)
    return path


def as_tuples(result):
    return [neighbor.as_tuple() for neighbor in result.neighbors]


#: A query whose sampled bound admits every shard — each test asserts
#: that property before relying on it, so a dead shard is provably in
#: the wave rather than coincidentally pruned.
def broad_spec(k=25):
    return QuerySpec(group=[[120.0, 130.0], [880.0, 870.0]], k=k)


def build_federation(points, count, directory, **node_options):
    """Partition ``points`` and start one in-process node per shard."""
    manifest = partition_dataset(points, count, directory, capacity=16)
    nodes = [
        ShardNode(shard.shard_id, directory / shard.path, workers=1, **node_options)
        for shard in manifest.shards
    ]
    addresses = [node.start() for node in nodes]
    return manifest, nodes, addresses


def close_all(*closables):
    for closable in closables:
        try:
            closable.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# the fault plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_hit_counting_and_at_times_window(self):
        plan = FaultPlan().fail("p", at=3, times=2, message="boom")
        outcomes = []
        for _ in range(6):
            arm = plan.poll("p")
            outcomes.append(arm is not None)
        assert outcomes == [False, False, True, True, False, False]
        assert plan.hits["p"] == 6
        assert plan.fired["p"] == 2

    def test_times_minus_one_fires_forever(self):
        plan = FaultPlan().drop("p", at=2, times=-1)
        assert [plan.poll("p") is not None for _ in range(5)] == [
            False, True, True, True, True,
        ]

    def test_fire_raises_typed_errors(self):
        with faults.active(FaultPlan().fail("p", message="boom")):
            with pytest.raises(FaultError, match="boom"):
                faults.fire("p")
        with faults.active(FaultPlan().crash("p")):
            with pytest.raises(InjectedCrash):
                faults.fire("p")

    def test_unarmed_points_and_cleared_plans_are_noops(self):
        faults.fire("p")  # nothing installed
        with faults.active(FaultPlan().crash("other")):
            faults.fire("p")  # installed, but this point is not armed
            assert faults.is_active()
        assert not faults.is_active()

    def test_filter_write_torn_is_seeded_deterministic(self):
        def torn_prefix(seed):
            plan = FaultPlan(seed=seed).torn("p")
            with faults.active(plan):
                data, crash_after = faults.filter_write("p", b"x" * 64)
            assert crash_after
            return len(data)

        assert torn_prefix(5) == torn_prefix(5)
        assert 1 <= torn_prefix(5) <= 63

    def test_frame_actions(self):
        plan = FaultPlan().drop("p", at=1).delay("p", 0.01, at=2)
        with faults.active(plan):
            assert faults.frame_action("p") == ("drop",)
            assert faults.frame_action("p") == ("delay", 0.01)
            assert faults.frame_action("p") is None


# ----------------------------------------------------------------------
# circuit breaker (fake clock: fully deterministic state machine)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0,
            clock=lambda: clock["now"], **kwargs,
        )
        return breaker, clock

    def test_trips_only_on_consecutive_failures(self):
        breaker, _ = self._breaker()
        assert breaker.state == CLOSED and breaker.allow()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        breaker.record_success()  # streak broken
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive: trips
        assert breaker.state == OPEN and breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_grants_exactly_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 9.9
        assert not breaker.allow()
        clock["now"] = 10.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # a second caller is still gated

    def test_half_open_success_recloses(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()
        assert breaker.trips == 1

    def test_half_open_failure_reopens_immediately(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        assert breaker.record_failure()  # one failure suffices here
        assert breaker.state == OPEN and breaker.trips == 2
        clock["now"] = 19.9  # timer restarted at the re-open
        assert not breaker.allow()
        clock["now"] = 20.0
        assert breaker.allow()


# ----------------------------------------------------------------------
# worker death: detection, typed failure, respawn
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_killed_workers_fail_typed_then_respawn(
        self, snapshot_path, reference_engine
    ):
        # Both original workers inherit the plan at fork and die on
        # their own first claimed batch; clearing the plan in the parent
        # *before* respawn means replacements fork clean and survive.
        faults.install(FaultPlan(seed=CHAOS_SEED).kill("worker.execute", at=1))
        try:
            server = GNNServer(snapshot_path, workers=2, window_s=0.0)
        finally:
            faults.clear()
        try:
            spec = QuerySpec(group=[[400.0, 400.0], [600.0, 600.0]], k=5)
            deaths, result = 0, None
            for _ in range(10):
                try:
                    result = server.submit(spec).result(timeout=30)
                    break
                except WorkerDiedError as error:
                    assert "resubmit" in str(error)
                    deaths += 1
            assert deaths == 2  # one per original worker, exactly
            assert as_tuples(result) == as_tuples(reference_engine.execute(spec))
            stats = server.stats()
            assert stats["server"]["worker_deaths"] == 2
        finally:
            server.close(timeout=30)

    def test_no_future_hangs_across_a_death(self, snapshot_path, reference_engine):
        faults.install(FaultPlan(seed=CHAOS_SEED).kill("worker.execute", at=1))
        try:
            server = GNNServer(snapshot_path, workers=2, window_s=0.0)
        finally:
            faults.clear()
        try:
            rng = np.random.default_rng(CHAOS_SEED)
            specs = [
                QuerySpec(group=rng.uniform(100, 900, size=(3, 2)), k=4)
                for _ in range(8)
            ]
            futures = [server.submit(spec) for spec in specs]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30))
                except WorkerDiedError:
                    outcomes.append(None)  # typed, resubmittable — not hung
            killed = [spec for spec, out in zip(specs, outcomes) if out is None]
            assert len(killed) == 2
            for spec, out in zip(specs, outcomes):
                if out is not None:
                    assert as_tuples(out) == as_tuples(reference_engine.execute(spec))
            # Resubmitting the killed batches on the respawned pool works.
            for spec in killed:
                retried = server.submit(spec).result(timeout=30)
                assert as_tuples(retried) == as_tuples(reference_engine.execute(spec))
        finally:
            server.close(timeout=30)


# ----------------------------------------------------------------------
# frame faults on a live node: drops retry, delays absorb
# ----------------------------------------------------------------------
class TestNodeFrameFaults:
    def test_dropped_query_frame_costs_exactly_one_retry(
        self, chaos_points, reference_engine, tmp_path
    ):
        manifest, nodes, addresses = build_federation(chaos_points, 1, tmp_path)
        coordinator = ShardCoordinator(
            manifest, addresses, timeout_s=0.5, retries=2, jitter_seed=CHAOS_SEED
        )
        try:
            spec = broad_spec(k=7)
            # node.recv hits: 1 = handshake ping, 2 = the query (dropped),
            # then the reconnect's ping (3) and resent query (4).
            with faults.active(FaultPlan(seed=CHAOS_SEED).drop("node.recv", at=2)):
                result = coordinator.execute(spec)
            assert as_tuples(result) == as_tuples(reference_engine.execute(spec))
            assert not result.degraded
            stats = coordinator.stats()
            assert stats["queries"] == 1
            assert stats["subqueries"] == 2
            assert stats["retries"] == 1
            assert stats["failed_subqueries"] == 1
            assert stats["breaker_trips"] == 0
            assert stats["breaker_fast_fails"] == 0
        finally:
            close_all(coordinator, *nodes)

    def test_delayed_frame_within_timeout_is_invisible(
        self, chaos_points, reference_engine, tmp_path
    ):
        manifest, nodes, addresses = build_federation(chaos_points, 1, tmp_path)
        coordinator = ShardCoordinator(
            manifest, addresses, timeout_s=5.0, retries=1, jitter_seed=CHAOS_SEED
        )
        try:
            spec = broad_spec(k=7)
            with faults.active(FaultPlan().delay("node.recv", 0.2, at=2)):
                result = coordinator.execute(spec)
            assert as_tuples(result) == as_tuples(reference_engine.execute(spec))
            stats = coordinator.stats()
            assert stats["retries"] == 0 and stats["failed_subqueries"] == 0
        finally:
            close_all(coordinator, *nodes)


# ----------------------------------------------------------------------
# dead shard: degrade, fail fast, re-admit — exact counters
# ----------------------------------------------------------------------
class TestDeadShardLifecycle:
    def test_breaker_fastfail_and_heartbeat_readmission_exact_stats(
        self, chaos_points, tmp_path
    ):
        manifest, nodes, addresses = build_federation(chaos_points, 2, tmp_path)
        coordinator = ShardCoordinator(
            manifest,
            addresses,
            timeout_s=2.0,
            retries=1,
            allow_degraded=True,
            failure_threshold=2,
            breaker_reset_s=30.0,  # only the health monitor can re-admit
            health_interval_s=0.2,
            jitter_seed=CHAOS_SEED,
        )
        restarted = None
        try:
            spec = broad_spec()
            healthy = coordinator.execute(spec)
            assert healthy.shards_contacted == [0, 1]  # the wave covers both

            nodes[1].close()
            started = time.perf_counter()
            first = coordinator.execute(spec)
            assert first.degraded and first.failed_shards == [1]
            assert first.shards_contacted == [0]
            # Both attempts hit a closed socket: fast connection refusals,
            # not timeouts — the query cannot take anywhere near 2 s.
            assert time.perf_counter() - started < 1.0

            started = time.perf_counter()
            second = coordinator.execute(spec)
            assert second.degraded and second.failed_shards == [1]
            # The tripped breaker skips the dead shard entirely.
            assert time.perf_counter() - started < 0.5

            stats = coordinator.stats()
            assert stats["queries"] == 3
            assert stats["subqueries"] == 6  # 2 healthy + (1 live + 2 dead) + 1
            assert stats["retries"] == 1
            assert stats["failed_subqueries"] == 2
            assert stats["breaker_trips"] == 1
            assert stats["breaker_fast_fails"] == 1
            assert stats["degraded_queries"] == 2
            assert stats["shards_contacted"] == 4
            assert stats["shards_pruned"] == 0

            # Restart the node on the *same* address; the heartbeat loop
            # records a success into the open breaker and re-admits it.
            restarted = ShardNode(
                1, nodes[1].snapshot_path, port=addresses[1][1], workers=1
            )
            restarted.start()
            deadline = time.monotonic() + 15.0
            recovered = None
            while time.monotonic() < deadline:
                recovered = coordinator.execute(spec)
                if not recovered.degraded:
                    break
                time.sleep(0.2)
            assert recovered is not None and not recovered.degraded
            assert recovered.shards_contacted == [0, 1]
            assert as_tuples(recovered) == as_tuples(healthy)
            assert coordinator.stats()["breaker_trips"] == 1  # never re-tripped
        finally:
            close_all(coordinator, *nodes, *([restarted] if restarted else []))

    def test_replica_failover_answers_from_the_standby(
        self, chaos_points, reference_engine, tmp_path
    ):
        manifest = partition_dataset(chaos_points, 1, tmp_path, capacity=16)
        path = tmp_path / manifest.shards[0].path
        primary = ShardNode(0, path, workers=1)
        standby = ShardNode(0, path, workers=1)
        coordinator = None
        try:
            replicas = [primary.start(), standby.start()]
            coordinator = ShardCoordinator(
                manifest,
                [replicas],
                timeout_s=2.0,
                retries=1,
                failure_threshold=1,
                breaker_reset_s=30.0,
                jitter_seed=CHAOS_SEED,
            )
            primary.close()
            spec = broad_spec(k=9)
            result = coordinator.execute(spec)
            assert as_tuples(result) == as_tuples(reference_engine.execute(spec))
            assert not result.degraded
            stats = coordinator.stats()
            # Attempt 1 dies on the primary and trips its breaker; the
            # retry is dispatched straight to the standby.
            assert stats["subqueries"] == 2
            assert stats["failed_subqueries"] == 1
            assert stats["retries"] == 1
            assert stats["breaker_trips"] == 1
            assert stats["breaker_fast_fails"] == 0
            assert stats["degraded_queries"] == 0
        finally:
            close_all(
                *([coordinator] if coordinator else []), primary, standby
            )


# ----------------------------------------------------------------------
# deadline budget: retries can never stretch past the caller's budget
# ----------------------------------------------------------------------
class TestDeadlineBudget:
    def test_black_hole_shard_fails_within_the_budget(self, chaos_points, tmp_path):
        manifest, nodes, addresses = build_federation(chaos_points, 1, tmp_path)
        coordinator = ShardCoordinator(
            manifest,
            addresses,
            timeout_s=10.0,  # per-attempt allowance far beyond the budget
            retries=5,
            deadline_s=0.6,
            jitter_seed=CHAOS_SEED,
        )
        try:
            # Swallow every frame: the node is up but answers nothing.
            with faults.active(FaultPlan().drop("node.recv", at=1, times=-1)):
                started = time.perf_counter()
                with pytest.raises(ShardUnavailableError, match="budget"):
                    coordinator.execute(broad_spec(k=5))
                elapsed = time.perf_counter() - started
            # One attempt clipped to the 0.6 s budget, then immediate
            # exhaustion — nowhere near timeout_s * (retries + 1) = 60 s.
            assert elapsed < 3.0
            stats = coordinator.stats()
            assert stats["subqueries"] == 1
            assert stats["failed_subqueries"] == 1
            assert stats["retries"] == 1  # the attempt that found no budget left
        finally:
            close_all(coordinator, *nodes)


# ----------------------------------------------------------------------
# the acceptance scenario: 4 shards, one killed mid-trace, full recovery
# ----------------------------------------------------------------------
class TestFourShardAcceptance:
    def test_kill_mid_trace_degrades_then_returns_to_healthy(
        self, chaos_points, tmp_path
    ):
        manifest, nodes, addresses = build_federation(chaos_points, 4, tmp_path)
        coordinator = ShardCoordinator(
            manifest,
            addresses,
            timeout_s=2.0,
            retries=1,
            allow_degraded=True,
            failure_threshold=2,
            breaker_reset_s=30.0,
            health_interval_s=0.2,
            jitter_seed=CHAOS_SEED,
        )
        restarted = None
        try:
            spec = broad_spec()
            baseline = coordinator.execute(spec)
            assert baseline.shards_contacted == [0, 1, 2, 3]
            assert not baseline.degraded
            victim = 2

            # Tracing stays on through the kill: every request — healthy,
            # mid-death, fast-failed — must still yield a *complete* span
            # tree (no span whose parent went missing with the node).
            tracer = obs_trace.enable()
            trace_outcomes = []
            trace_ids = []
            for step in range(12):
                if step == 4:
                    nodes[victim].close()  # mid-trace node death
                started = time.perf_counter()
                # ``result(timeout=...)`` is the zero-hung-requests check:
                # every request resolves well inside the bound.
                result = coordinator.submit(spec).result(timeout=10.0)
                trace_outcomes.append(
                    (result.degraded, time.perf_counter() - started)
                )
                assert result.neighbors  # degraded still answers
                assert result.trace_id is not None
                trace_ids.append(result.trace_id)

            healthy_prefix = [degraded for degraded, _ in trace_outcomes[:4]]
            degraded_suffix = [degraded for degraded, _ in trace_outcomes[4:]]
            assert healthy_prefix == [False] * 4
            assert degraded_suffix == [True] * 8
            # Post-kill queries stay fast: refused connections and open
            # breakers, never timeout stalls.
            assert max(elapsed for _, elapsed in trace_outcomes[5:]) < 1.0

            stats = coordinator.stats()
            assert stats["degraded_queries"] == 8
            assert stats["breaker_trips"] == 1
            assert stats["breaker_fast_fails"] == 7  # every post-trip query

            # Every request in the run — including the one that watched
            # the node die and the seven that fast-failed on the open
            # breaker — produced a complete span tree.
            for step, trace_id in enumerate(trace_ids):
                spans = tracer.spans(trace_id)
                assert orphan_spans(spans) == [], f"step {step} has orphan spans"
                tree = tracer.tree(trace_id)
                assert tree is not None and tree["name"] == "shard.query"
                degraded, _ = trace_outcomes[step]
                assert tree["attrs"]["outcome"] == (
                    "degraded" if degraded else "ok"
                )
                attempts = [s for s in spans if s["name"] == "shard.attempt"]
                assert attempts, f"step {step} recorded no attempt spans"
                for span in attempts:
                    assert span["attrs"]["attempt"] >= 1
                    assert "breaker_state" in span["attrs"]
                    assert span["end_s"] is not None

            # Step 4 saw the death live: the victim's dispatch retried,
            # with each attempt numbered and stamped "connection".
            death_attempts = [
                s
                for s in tracer.spans(trace_ids[4])
                if s["name"] == "shard.attempt" and s["attrs"]["shard"] == victim
            ]
            assert [s["attrs"]["attempt"] for s in death_attempts] == [1, 2]
            assert all(
                s["attrs"]["outcome"] == "connection" for s in death_attempts
            )
            # Post-trip queries fast-fail: one attempt, breaker open.
            for trace_id in trace_ids[5:]:
                fast_fails = [
                    s
                    for s in tracer.spans(trace_id)
                    if s["name"] == "shard.attempt"
                    and s["attrs"]["shard"] == victim
                ]
                assert len(fast_fails) == 1
                assert fast_fails[0]["attrs"]["outcome"] == "fast-fail"
                assert fast_fails[0]["attrs"]["breaker_state"] == "open"

            restarted = ShardNode(
                victim,
                nodes[victim].snapshot_path,
                port=addresses[victim][1],
                workers=1,
            )
            restarted.start()
            deadline = time.monotonic() + 15.0
            recovered = None
            while time.monotonic() < deadline:
                recovered = coordinator.execute(spec)
                if not recovered.degraded:
                    break
                time.sleep(0.2)
            assert recovered is not None and not recovered.degraded
            assert recovered.shards_contacted == [0, 1, 2, 3]  # 100% healthy
            assert as_tuples(recovered) == as_tuples(baseline)
        finally:
            obs_trace.disable()
            close_all(coordinator, *nodes, *([restarted] if restarted else []))
