"""Tests for repro.core.bruteforce (the ground-truth baseline itself)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_gnn, brute_force_over_tree
from repro.core.types import GroupQuery
from repro.geometry.distance import group_distance
from repro.rtree.tree import RTree


class TestBruteForce:
    def test_single_nn_on_tiny_example(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 1.0]])
        query = GroupQuery([[0.0, 0.0], [10.0, 0.0]], k=1)
        result = brute_force_gnn(points, query)
        # The middle point has summed distance ~10.2; each endpoint has 10.0.
        assert result.best.record_id in (0, 1)
        assert result.best.distance == pytest.approx(10.0)

    def test_k_results_are_sorted_and_distinct(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, size=(200, 2))
        query = GroupQuery(rng.uniform(0, 100, size=(5, 2)), k=10)
        result = brute_force_gnn(points, query)
        distances = result.distances()
        assert distances == sorted(distances)
        assert len(set(result.record_ids())) == 10

    def test_distances_match_direct_recomputation(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, size=(50, 2))
        group = rng.uniform(0, 100, size=(4, 2))
        result = brute_force_gnn(points, GroupQuery(group, k=3))
        for neighbor in result.neighbors:
            assert neighbor.distance == pytest.approx(
                group_distance(points[neighbor.record_id], group)
            )

    def test_k_larger_than_dataset_is_clamped(self):
        points = np.random.default_rng(2).uniform(0, 10, size=(5, 2))
        result = brute_force_gnn(points, GroupQuery([[1.0, 1.0]], k=50))
        assert len(result.neighbors) == 5

    def test_max_aggregate(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 10.0]])
        group = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = brute_force_gnn(points, GroupQuery(group, k=1, aggregate="max"))
        # The centre point minimises the maximum distance to the two corners.
        assert result.best.record_id == 1

    def test_min_aggregate(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0], [100.0, 100.0]])
        group = np.array([[99.0, 99.0]])
        result = brute_force_gnn(points, GroupQuery(group, k=1, aggregate="min"))
        assert result.best.record_id == 2

    def test_weighted_query(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        group = np.array([[0.0, 0.0], [10.0, 0.0]])
        # With a heavy weight on the first query point, the best data point is
        # the one sitting on it.
        result = brute_force_gnn(
            points, GroupQuery(group, k=1, weights=np.array([10.0, 1.0]))
        )
        assert result.best.record_id == 0

    def test_cost_records_distance_computations(self):
        points = np.random.default_rng(3).uniform(0, 1, size=(30, 2))
        query = GroupQuery(np.random.default_rng(4).uniform(0, 1, size=(6, 2)), k=1)
        result = brute_force_gnn(points, query)
        assert result.cost.distance_computations == 30 * 6
        assert result.cost.algorithm == "brute-force"


class TestBruteForceOverTree:
    def test_matches_array_based_brute_force(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 100, size=(150, 2))
        tree = RTree.bulk_load(points, capacity=8)
        query = GroupQuery(rng.uniform(0, 100, size=(6, 2)), k=5)
        from_tree = brute_force_over_tree(tree, query)
        from_array = brute_force_gnn(points, query)
        assert from_tree.distances() == pytest.approx(from_array.distances())
        assert from_tree.record_ids() == from_array.record_ids()

    def test_empty_tree_gives_empty_result(self):
        result = brute_force_over_tree(RTree(), GroupQuery([[0.0, 0.0]], k=3))
        assert result.neighbors == []
