"""Tests for repro.rtree.traversal: DF, BF and incremental NN search."""

import numpy as np
import pytest

from repro.rtree.traversal import (
    best_first_nearest,
    depth_first_nearest,
    incremental_nearest,
    incremental_nearest_generic,
)
from repro.rtree.tree import RTree


def _true_knn(points, query, k):
    distances = np.linalg.norm(points - np.asarray(query), axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return [(int(i), float(distances[i])) for i in order]


class TestBestFirst:
    def test_single_nearest_neighbor_matches_linear_scan(self, uniform_points_1k, uniform_tree):
        query = [500.0, 500.0]
        result = best_first_nearest(uniform_tree, query, k=1)
        expected = _true_knn(uniform_points_1k, query, 1)
        assert result[0].as_tuple() == pytest.approx(expected[0])

    def test_knn_distances_match_linear_scan(self, uniform_points_1k, uniform_tree):
        query = [123.0, 877.0]
        result = best_first_nearest(uniform_tree, query, k=10)
        expected = _true_knn(uniform_points_1k, query, 10)
        assert [r.distance for r in result] == pytest.approx([d for _, d in expected])

    def test_k_larger_than_dataset_returns_everything(self, small_tree, small_points):
        result = best_first_nearest(small_tree, [0.0, 0.0], k=10_000)
        assert len(result) == len(small_points)

    def test_invalid_k_rejected(self, small_tree):
        with pytest.raises(ValueError):
            best_first_nearest(small_tree, [0.0, 0.0], k=0)

    def test_empty_tree_returns_no_neighbors(self):
        assert best_first_nearest(RTree(), [0.0, 0.0], k=3) == []

    def test_query_point_coinciding_with_data_point(self, small_points, small_tree):
        query = small_points[42]
        result = best_first_nearest(small_tree, query, k=1)
        assert result[0].distance == pytest.approx(0.0)


class TestDepthFirst:
    def test_depth_first_matches_best_first(self, uniform_points_1k, uniform_tree):
        query = [321.0, 654.0]
        df = depth_first_nearest(uniform_tree, query, k=5)
        bf = best_first_nearest(uniform_tree, query, k=5)
        assert [r.distance for r in df] == pytest.approx([r.distance for r in bf])

    def test_depth_first_accesses_at_least_as_many_nodes(self, uniform_tree):
        # [PM97]: BF is I/O-optimal, DF is not; on the same query DF can
        # never access fewer nodes than BF.
        query = [250.0, 750.0]
        uniform_tree.reset_stats()
        best_first_nearest(uniform_tree, query, k=1)
        bf_accesses = uniform_tree.stats.node_accesses
        uniform_tree.reset_stats()
        depth_first_nearest(uniform_tree, query, k=1)
        df_accesses = uniform_tree.stats.node_accesses
        assert df_accesses >= bf_accesses

    def test_empty_tree(self):
        assert depth_first_nearest(RTree(), [1.0, 1.0], k=2) == []

    def test_invalid_k_rejected(self, small_tree):
        with pytest.raises(ValueError):
            depth_first_nearest(small_tree, [0.0, 0.0], k=-1)


class TestIncremental:
    def test_stream_is_sorted_and_complete(self, small_points, small_tree):
        stream = list(incremental_nearest(small_tree, [500.0, 500.0]))
        distances = [neighbor.distance for neighbor in stream]
        assert distances == sorted(distances)
        assert sorted(n.record_id for n in stream) == list(range(len(small_points)))

    def test_stream_prefix_equals_knn(self, uniform_points_1k, uniform_tree):
        query = [10.0, 990.0]
        stream = incremental_nearest(uniform_tree, query)
        prefix = [next(stream) for _ in range(7)]
        expected = _true_knn(uniform_points_1k, query, 7)
        assert [p.distance for p in prefix] == pytest.approx([d for _, d in expected])

    def test_stream_is_lazy_about_node_accesses(self, uniform_tree):
        uniform_tree.reset_stats()
        stream = incremental_nearest(uniform_tree, [500.0, 500.0])
        next(stream)
        partial_accesses = uniform_tree.stats.node_accesses
        # Draining the stream costs many more accesses than the first item.
        for _ in stream:
            pass
        assert uniform_tree.stats.node_accesses > partial_accesses

    def test_empty_tree_stream_is_empty(self):
        assert list(incremental_nearest(RTree(), [0.0, 0.0])) == []


class TestIncrementalGeneric:
    def test_custom_keys_order_by_distance_to_mbr(self, small_points, small_tree):
        # Rank points by their distance to a query rectangle rather than to
        # a point: the generic traversal supports it as long as the node key
        # lower-bounds the point key.
        from repro.geometry.mbr import MBR

        region = MBR([100.0, 100.0], [200.0, 200.0])
        stream = incremental_nearest_generic(
            small_tree,
            node_key=lambda mbr: mbr.mindist_mbr(region),
            point_key=lambda point: region.mindist_point(point),
        )
        results = list(stream)
        distances = [n.distance for n in results]
        assert distances == sorted(distances)
        expected_best = min(region.mindist_point(p) for p in small_points)
        assert distances[0] == pytest.approx(expected_best)

    def test_constant_keys_enumerate_everything(self, small_tree, small_points):
        stream = incremental_nearest_generic(small_tree, lambda mbr: 0.0, lambda p: 0.0)
        assert len(list(stream)) == len(small_points)
