"""Tests for repro.rtree.closest_pairs: the incremental closest-pair join."""

import numpy as np
import pytest

from repro.rtree.closest_pairs import incremental_closest_pairs
from repro.rtree.tree import RTree


@pytest.fixture(scope="module")
def pair_setup():
    rng = np.random.default_rng(17)
    data = rng.uniform(0, 100, size=(120, 2))
    queries = rng.uniform(0, 100, size=(40, 2))
    data_tree = RTree.bulk_load(data, capacity=8)
    query_tree = RTree.bulk_load(queries, capacity=8)
    return data, queries, data_tree, query_tree


def _all_pair_distances(data, queries):
    delta = data[:, None, :] - queries[None, :, :]
    return np.sqrt(np.sum(delta * delta, axis=2))


class TestClosestPairStream:
    def test_first_pair_is_the_global_closest_pair(self, pair_setup):
        data, queries, data_tree, query_tree = pair_setup
        first = next(incremental_closest_pairs(data_tree, query_tree))
        matrix = _all_pair_distances(data, queries)
        assert first.distance == pytest.approx(matrix.min())

    def test_stream_is_non_decreasing(self, pair_setup):
        _, _, data_tree, query_tree = pair_setup
        stream = incremental_closest_pairs(data_tree, query_tree)
        distances = [next(stream).distance for _ in range(200)]
        assert distances == sorted(distances)

    def test_exhausted_stream_enumerates_cartesian_product(self, pair_setup):
        data, queries, data_tree, query_tree = pair_setup
        pairs = list(incremental_closest_pairs(data_tree, query_tree))
        assert len(pairs) == len(data) * len(queries)
        seen = {(p.data_id, p.query_id) for p in pairs}
        assert len(seen) == len(pairs)

    def test_pair_distances_match_recomputation(self, pair_setup):
        data, queries, data_tree, query_tree = pair_setup
        stream = incremental_closest_pairs(data_tree, query_tree)
        for _ in range(50):
            pair = next(stream)
            expected = float(np.linalg.norm(data[pair.data_id] - queries[pair.query_id]))
            assert pair.distance == pytest.approx(expected)

    def test_prefix_matches_sorted_distance_matrix(self, pair_setup):
        data, queries, data_tree, query_tree = pair_setup
        matrix = _all_pair_distances(data, queries).ravel()
        matrix.sort()
        stream = incremental_closest_pairs(data_tree, query_tree)
        prefix = [next(stream).distance for _ in range(100)]
        assert prefix == pytest.approx(matrix[:100].tolist())

    def test_node_accesses_are_charged_to_both_trees(self, pair_setup):
        _, _, data_tree, query_tree = pair_setup
        data_tree.reset_stats()
        query_tree.reset_stats()
        stream = incremental_closest_pairs(data_tree, query_tree)
        for _ in range(20):
            next(stream)
        assert data_tree.stats.node_accesses > 0
        assert query_tree.stats.node_accesses > 0

    def test_empty_trees_produce_empty_stream(self):
        empty = RTree()
        other = RTree.bulk_load(np.random.default_rng(0).uniform(0, 1, size=(10, 2)))
        assert list(incremental_closest_pairs(empty, other)) == []
        assert list(incremental_closest_pairs(other, empty)) == []

    def test_single_point_trees(self):
        data_tree = RTree.bulk_load(np.array([[0.0, 0.0]]))
        query_tree = RTree.bulk_load(np.array([[3.0, 4.0]]))
        pairs = list(incremental_closest_pairs(data_tree, query_tree))
        assert len(pairs) == 1
        assert pairs[0].distance == pytest.approx(5.0)
