"""Tests for repro.storage.pager, repro.storage.pointfile and counters."""

import numpy as np
import pytest

from repro.geometry.hilbert import hilbert_indices
from repro.storage.counters import IOCounters
from repro.storage.pager import Pager
from repro.storage.pointfile import PointFile


@pytest.fixture
def sample_points():
    return np.random.default_rng(23).uniform(0, 1000, size=(230, 2))


class TestIOCounters:
    def test_page_reads_accumulate(self):
        counters = IOCounters()
        counters.record_page_reads(3)
        counters.record_page_reads()
        assert counters.page_reads == 4

    def test_block_read_counts_both_metrics(self):
        counters = IOCounters()
        counters.record_block_read(pages_in_block=5)
        assert counters.block_reads == 1
        assert counters.page_reads == 5

    def test_reset(self):
        counters = IOCounters()
        counters.record_block_read(2)
        counters.record_sort_pass()
        counters.reset()
        assert counters.snapshot() == {"page_reads": 0, "block_reads": 0, "sort_passes": 0}


class TestPager:
    def test_pages_cover_all_points_in_order(self, sample_points):
        pager = Pager(sample_points, points_per_page=50)
        assert pager.page_count == 5
        reassembled = np.vstack([pager.peek_page(i).points for i in range(pager.page_count)])
        assert np.array_equal(reassembled, sample_points)

    def test_last_page_may_be_partial(self, sample_points):
        pager = Pager(sample_points, points_per_page=50)
        assert len(pager.peek_page(4)) == 30

    def test_read_page_charges_io(self, sample_points):
        pager = Pager(sample_points, points_per_page=50)
        pager.read_page(0)
        pager.read_pages(1, 2)
        assert pager.counters.page_reads == 3

    def test_peek_does_not_charge_io(self, sample_points):
        pager = Pager(sample_points, points_per_page=50)
        pager.peek_page(0)
        assert pager.counters.page_reads == 0

    def test_out_of_range_page_rejected(self, sample_points):
        pager = Pager(sample_points, points_per_page=50)
        with pytest.raises(IndexError):
            pager.read_page(99)

    def test_invalid_page_size_rejected(self, sample_points):
        with pytest.raises(ValueError):
            Pager(sample_points, points_per_page=0)

    def test_record_ids_follow_points(self, sample_points):
        ids = np.arange(len(sample_points))[::-1].copy()
        pager = Pager(sample_points, points_per_page=64, record_ids=ids)
        assert pager.peek_page(0).record_ids[0] == len(sample_points) - 1

    def test_record_id_length_mismatch_rejected(self, sample_points):
        with pytest.raises(ValueError):
            Pager(sample_points, points_per_page=64, record_ids=np.arange(3))


class TestPointFile:
    def test_block_structure(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        assert pointfile.point_count == 230
        assert pointfile.points_per_block == 100
        assert pointfile.block_count == 3

    def test_blocks_partition_the_file(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        blocks = list(pointfile.iter_blocks())
        total = sum(block.cardinality for block in blocks)
        assert total == len(sample_points)
        all_ids = np.concatenate([block.record_ids for block in blocks])
        assert sorted(all_ids.tolist()) == list(range(len(sample_points)))

    def test_file_is_hilbert_sorted_by_default(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        stored = pointfile.all_points()
        indices = hilbert_indices(stored)
        assert all(indices[i] <= indices[i + 1] for i in range(len(indices) - 1))

    def test_unsorted_file_keeps_original_order(self, sample_points):
        pointfile = PointFile(
            sample_points, points_per_page=50, block_pages=2, hilbert_sorted=False
        )
        assert np.array_equal(pointfile.all_points(), sample_points)

    def test_block_read_charges_io(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        before = pointfile.counters.block_reads
        pointfile.read_block(0)
        assert pointfile.counters.block_reads == before + 1
        assert pointfile.counters.page_reads >= 2

    def test_block_mbr_covers_its_points(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        block = pointfile.read_block(1)
        assert all(block.mbr.contains_point(p) for p in block.points)

    def test_block_summaries_match_blocks(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        summaries = pointfile.block_summaries()
        blocks = list(pointfile.iter_blocks())
        assert [s.cardinality for s in summaries] == [b.cardinality for b in blocks]
        assert [s.mbr for s in summaries] == [b.mbr for b in blocks]

    def test_out_of_range_block_rejected(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        with pytest.raises(IndexError):
            pointfile.read_block(10)

    def test_invalid_block_pages_rejected(self, sample_points):
        with pytest.raises(ValueError):
            PointFile(sample_points, points_per_page=50, block_pages=0)

    def test_sort_pass_is_recorded(self, sample_points):
        pointfile = PointFile(sample_points, points_per_page=50, block_pages=2)
        assert pointfile.counters.sort_passes == 1
