"""Tests for repro.rtree.entry and repro.rtree.node."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.rtree.entry import ChildEntry, LeafEntry, entries_mbr
from repro.rtree.node import Node


class TestLeafEntry:
    def test_stores_point_and_record_id(self):
        entry = LeafEntry([1.0, 2.0], 7)
        assert entry.record_id == 7
        assert entry.point.tolist() == [1.0, 2.0]

    def test_mbr_is_degenerate_box_on_the_point(self):
        entry = LeafEntry([3.0, 4.0], 0)
        assert entry.mbr == MBR.from_point([3.0, 4.0])

    def test_repr_contains_id(self):
        assert "id=5" in repr(LeafEntry([0.0, 0.0], 5))


class TestChildEntry:
    def test_recompute_mbr_tightens_to_child_contents(self):
        child = Node(0, [LeafEntry([0.0, 0.0], 0), LeafEntry([2.0, 2.0], 1)])
        entry = ChildEntry(MBR([-10.0, -10.0], [10.0, 10.0]), child)
        entry.recompute_mbr()
        assert entry.mbr == MBR([0.0, 0.0], [2.0, 2.0])


class TestEntriesMbr:
    def test_mbr_of_leaf_entries(self):
        entries = [LeafEntry([0.0, 1.0], 0), LeafEntry([4.0, -1.0], 1)]
        assert entries_mbr(entries) == MBR([0.0, -1.0], [4.0, 1.0])

    def test_mbr_of_child_entries(self):
        child_a = Node(0, [LeafEntry([0.0, 0.0], 0)])
        child_b = Node(0, [LeafEntry([5.0, 5.0], 1)])
        entries = [ChildEntry(child_a.compute_mbr(), child_a), ChildEntry(child_b.compute_mbr(), child_b)]
        assert entries_mbr(entries) == MBR([0.0, 0.0], [5.0, 5.0])

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            entries_mbr([])


class TestNode:
    def test_leaf_flag(self):
        assert Node(0).is_leaf
        assert not Node(1).is_leaf

    def test_node_ids_are_unique(self):
        assert Node(0).node_id != Node(0).node_id

    def test_leaf_rejects_child_entries(self):
        leaf = Node(0)
        child = Node(0)
        with pytest.raises(TypeError):
            leaf.add(ChildEntry(MBR([0, 0], [1, 1]), child))

    def test_internal_rejects_leaf_entries(self):
        internal = Node(1)
        with pytest.raises(TypeError):
            internal.add(LeafEntry([0.0, 0.0], 0))

    def test_points_iterates_leaf_contents(self):
        leaf = Node(0, [LeafEntry([1.0, 1.0], 3), LeafEntry([2.0, 2.0], 4)])
        assert [record_id for record_id, _ in leaf.points()] == [3, 4]

    def test_points_on_internal_node_raises(self):
        with pytest.raises(TypeError):
            list(Node(1).points())

    def test_children_on_leaf_raises(self):
        with pytest.raises(TypeError):
            list(Node(0).children())

    def test_children_iterates_subnodes(self):
        child = Node(0, [LeafEntry([0.0, 0.0], 0)])
        parent = Node(1, [ChildEntry(child.compute_mbr(), child)])
        assert list(parent.children()) == [child]

    def test_len_counts_entries(self):
        leaf = Node(0, [LeafEntry([0.0, 0.0], 0)])
        assert len(leaf) == 1

    def test_compute_mbr_covers_entries(self):
        leaf = Node(0, [LeafEntry([0.0, 3.0], 0), LeafEntry([2.0, -1.0], 1)])
        assert leaf.compute_mbr() == MBR([0.0, -1.0], [2.0, 3.0])


class TestTreeStatsRepr:
    def test_node_repr_mentions_kind(self):
        assert "leaf" in repr(Node(0))
        assert "level-2" in repr(Node(2))
