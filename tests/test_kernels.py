"""Property-based conformance suite for the vectorised kernel layer.

Every kernel in :mod:`repro.geometry.kernels` must agree with the scalar
helper it accelerates (to 1e-9, and bit-for-bit on the hot 2-D paths)
across dimensionalities 2-6, singleton and larger groups, empty and
non-empty candidate arrays, and weighted sum/max/min aggregates — the
guarantee that lets the R-tree traversals score whole leaves per heap
pop without changing a single answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import kernels
from repro.geometry.distance import (
    euclidean,
    group_distance,
    group_distances_bulk,
    group_mindist,
    minkowski,
    squared_euclidean,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import GeometryError

# Coordinates are kept modest so the 1e-9 agreement bound is meaningful
# even for dimension-6 sums of squares.
coordinate = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)
dims_strategy = st.integers(min_value=2, max_value=6)


@st.composite
def workload(draw, min_candidates=0, max_candidates=10, min_group=1, max_group=8):
    """Draw (candidate points, query group, weights) of one dimensionality."""
    dims = draw(dims_strategy)

    def point_list(min_count, max_count):
        return draw(
            st.lists(
                st.tuples(*[coordinate] * dims), min_size=min_count, max_size=max_count
            )
        )

    candidates = np.array(point_list(min_candidates, max_candidates), dtype=np.float64)
    candidates = candidates.reshape(-1, dims)
    group = np.array(point_list(min_group, max_group), dtype=np.float64)
    weights = np.array(
        [draw(st.floats(min_value=0.0, max_value=10.0, width=32)) for _ in range(group.shape[0])]
    )
    return candidates, group, weights


@st.composite
def boxes_and_group(draw, max_boxes=8, min_group=1, max_group=8):
    """Draw (box lows, box highs, query group, weights) of one dimensionality."""
    dims = draw(dims_strategy)
    corners = draw(
        st.lists(
            st.tuples(st.tuples(*[coordinate] * dims), st.tuples(*[coordinate] * dims)),
            min_size=1,
            max_size=max_boxes,
        )
    )
    a = np.array([pair[0] for pair in corners], dtype=np.float64)
    b = np.array([pair[1] for pair in corners], dtype=np.float64)
    lows, highs = np.minimum(a, b), np.maximum(a, b)
    group = np.array(
        draw(st.lists(st.tuples(*[coordinate] * dims), min_size=min_group, max_size=max_group)),
        dtype=np.float64,
    )
    weights = np.array(
        [draw(st.floats(min_value=0.0, max_value=10.0, width=32)) for _ in range(group.shape[0])]
    )
    return lows, highs, group, weights


def _close(a, b):
    return np.allclose(a, b, rtol=1e-9, atol=1e-9)


class TestAggregateDistanceKernels:
    @given(data=workload(), aggregate=st.sampled_from(kernels.AGGREGATES))
    @settings(max_examples=150, deadline=None)
    def test_aggregate_distances_match_scalar_helper(self, data, aggregate):
        candidates, group, _ = data
        bulk = kernels.aggregate_distances(candidates, group, aggregate=aggregate)
        assert bulk.shape == (candidates.shape[0],)
        scalar = [group_distance(p, group, aggregate=aggregate) for p in candidates]
        assert _close(bulk, scalar)

    @given(data=workload(), aggregate=st.sampled_from(kernels.AGGREGATES))
    @settings(max_examples=150, deadline=None)
    def test_weighted_aggregates_match_scalar_helper(self, data, aggregate):
        candidates, group, weights = data
        bulk = kernels.aggregate_distances(
            candidates, group, weights=weights, aggregate=aggregate
        )
        scalar = [
            group_distance(p, group, weights=weights, aggregate=aggregate) for p in candidates
        ]
        assert _close(bulk, scalar)

    @given(data=workload(min_candidates=1))
    @settings(max_examples=100, deadline=None)
    def test_point_distances_match_euclidean(self, data):
        candidates, group, _ = data
        q = group[0]
        assert _close(
            kernels.point_distances(candidates, q), [euclidean(p, q) for p in candidates]
        )

    @given(data=workload(min_candidates=1))
    @settings(max_examples=100, deadline=None)
    def test_metric_variants(self, data):
        candidates, group, _ = data
        q = group[0]
        squared = kernels.point_distances(candidates, q, metric=kernels.SQUARED)
        assert _close(squared, [squared_euclidean(p, q) for p in candidates])
        p1 = kernels.point_distances(candidates, q, metric=kernels.MINKOWSKI, p=1.0)
        assert _close(p1, np.abs(candidates - q).sum(axis=1))
        p2 = kernels.point_distances(candidates, q, metric=kernels.MINKOWSKI, p=2.0)
        assert _close(p2, kernels.point_distances(candidates, q))
        pinf = kernels.point_distances(candidates, q, metric=kernels.MINKOWSKI, p=np.inf)
        assert _close(pinf, np.abs(candidates - q).max(axis=1))
        assert _close(
            [minkowski(p, q, p=1.0) for p in candidates], p1
        )

    @given(data=workload(min_candidates=1, max_candidates=6), aggregate=st.sampled_from(kernels.AGGREGATES))
    @settings(max_examples=75, deadline=None)
    def test_batched_tensor_matches_per_group_kernel(self, data, aggregate):
        candidates, group, _ = data
        groups = np.stack([group, group + 1.0])
        batched = kernels.batched_aggregate_distances(candidates, groups, aggregate)
        for row, one_group in zip(batched, groups):
            expected = kernels.aggregate_distances(candidates, one_group, aggregate=aggregate)
            assert np.array_equal(row, expected)

    def test_empty_candidate_array(self):
        group = np.array([[1.0, 2.0], [3.0, 4.0]])
        empty = np.empty((0, 2))
        assert kernels.aggregate_distances(empty, group).shape == (0,)
        assert kernels.point_distances(empty, group[0]).shape == (0,)

    def test_singleton_group(self):
        group = np.array([[1.0, 2.0]])
        candidates = np.array([[4.0, 6.0], [1.0, 2.0]])
        for aggregate in kernels.AGGREGATES:
            assert _close(
                kernels.aggregate_distances(candidates, group, aggregate=aggregate),
                [5.0, 0.0],
            )

    def test_unknown_aggregate_and_metric_rejected(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            kernels.aggregate_distances(pts, pts, aggregate="median")
        with pytest.raises(ValueError):
            kernels.pairwise_distances(pts, pts, metric="cosine")
        with pytest.raises(ValueError):
            kernels.point_distances(pts, pts[0], metric=kernels.MINKOWSKI, p=0.0)


class TestBoxKernels:
    @given(data=boxes_and_group(), aggregate=st.sampled_from(kernels.AGGREGATES))
    @settings(max_examples=150, deadline=None)
    def test_boxes_group_mindist_matches_scalar_helper(self, data, aggregate):
        lows, highs, group, weights = data
        bulk = kernels.boxes_group_mindist(lows, highs, group, aggregate=aggregate)
        scalar = [
            group_mindist(MBR(low, high), group, aggregate=aggregate)
            for low, high in zip(lows, highs)
        ]
        assert _close(bulk, scalar)
        weighted = kernels.boxes_group_mindist(
            lows, highs, group, weights=weights, aggregate=aggregate
        )
        scalar_weighted = [
            group_mindist(MBR(low, high), group, weights=weights, aggregate=aggregate)
            for low, high in zip(lows, highs)
        ]
        assert _close(weighted, scalar_weighted)

    @given(data=boxes_and_group())
    @settings(max_examples=100, deadline=None)
    def test_boxes_mindist_point_matches_mbr(self, data):
        lows, highs, group, _ = data
        q = group[0]
        bulk = kernels.boxes_mindist_point(lows, highs, q)
        scalar = [MBR(low, high).mindist_point(q) for low, high in zip(lows, highs)]
        assert _close(bulk, scalar)

    @given(data=boxes_and_group(min_group=2))
    @settings(max_examples=100, deadline=None)
    def test_points_mindist_box_matches_mbr(self, data):
        lows, highs, group, _ = data
        box = MBR(lows[0], highs[0])
        bulk = kernels.points_mindist_box(group, box.low, box.high)
        assert _close(bulk, box.mindist_points(group))

    @given(data=boxes_and_group())
    @settings(max_examples=100, deadline=None)
    def test_boxes_mindist_box_matches_mbr(self, data):
        lows, highs, group, _ = data
        other = MBR.from_points(group)
        bulk = kernels.boxes_mindist_box(lows, highs, other.low, other.high)
        scalar = [MBR(low, high).mindist_mbr(other) for low, high in zip(lows, highs)]
        assert _close(bulk, scalar)

    @given(data=boxes_and_group())
    @settings(max_examples=100, deadline=None)
    def test_weighted_summary_kernels_match_explicit_sum(self, data):
        lows, highs, group, _ = data
        cards = np.arange(1.0, lows.shape[0] + 1.0)
        boxes = [MBR(low, high) for low, high in zip(lows, highs)]
        target = MBR.from_points(group)
        bulk = kernels.boxes_weighted_group_mindist(
            target.low[None, :], target.high[None, :], lows, highs, cards
        )
        expected = sum(c * target.mindist_mbr(box) for c, box in zip(cards, boxes))
        assert _close(bulk[0], expected)
        point_bulk = kernels.points_weighted_group_mindist(group, lows, highs, cards)
        point_expected = [
            sum(c * box.mindist_point(q) for c, box in zip(cards, boxes)) for q in group
        ]
        assert _close(point_bulk, point_expected)


class TestScalarWrapperFastPath:
    """Regression tests for the already-ndarray fast path (satellite fix)."""

    @given(
        pair=st.tuples(
            st.tuples(coordinate, coordinate, coordinate),
            st.tuples(coordinate, coordinate, coordinate),
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_fast_and_validating_paths_agree(self, pair):
        a_list, b_list = list(pair[0]), list(pair[1])
        a_arr = np.array(a_list, dtype=np.float64)
        b_arr = np.array(b_list, dtype=np.float64)
        # list input takes the validating path, float64 arrays the fast path
        assert euclidean(a_list, b_list) == euclidean(a_arr, b_arr)
        assert squared_euclidean(a_list, b_list) == squared_euclidean(a_arr, b_arr)

    def test_fast_path_preserves_validation_for_bad_input(self):
        good = np.array([1.0, 2.0])
        with pytest.raises(GeometryError):
            euclidean(good, [1.0, np.nan])
        # non-finite float64 arrays must NOT slip through the fast path
        with pytest.raises(GeometryError):
            euclidean(good, np.array([1.0, np.nan]))
        with pytest.raises(GeometryError):
            group_distance(np.array([0.0, np.inf]), np.array([[1.0, 2.0]]))
        with pytest.raises(GeometryError):
            group_distances_bulk(np.array([[0.0, np.nan]]), np.array([[1.0, 2.0]]))
        with pytest.raises(GeometryError):
            euclidean(good, np.array([1.0, 2.0, 3.0]))  # dims mismatch
        with pytest.raises(GeometryError):
            euclidean(np.array([]), np.array([]))
        with pytest.raises(GeometryError):
            squared_euclidean(good, np.array([[1.0, 2.0]]))  # not a single point
        # non-float64 arrays flow through the validating path
        assert euclidean(np.array([0, 0]), np.array([3, 4])) == 5.0

    def test_bulk_wrapper_fast_path_agrees_with_validating_path(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(-10, 10, size=(12, 3))
        group = rng.uniform(-10, 10, size=(4, 3))
        fast = group_distances_bulk(pts, group)
        validating = group_distances_bulk(pts.tolist(), group.tolist())
        assert np.array_equal(fast, validating)


class TestBitIdentityHotPath:
    """The 2-D hot path must be *bit*-identical, not just close."""

    def test_leaf_scoring_matches_scalar_loop_exactly(self):
        rng = np.random.default_rng(42)
        leaf = rng.uniform(0, 1000, size=(50, 2))
        group = rng.uniform(0, 1000, size=(64, 2))
        bulk = kernels.aggregate_distances(leaf, group)
        scalar = np.array([group_distance(p, group) for p in leaf])
        assert np.array_equal(bulk, scalar)

    def test_box_scoring_matches_scalar_loop_exactly(self):
        rng = np.random.default_rng(43)
        a = rng.uniform(0, 1000, size=(50, 2))
        b = rng.uniform(0, 1000, size=(50, 2))
        lows, highs = np.minimum(a, b), np.maximum(a, b)
        group = rng.uniform(0, 1000, size=(64, 2))
        bulk = kernels.boxes_group_mindist(lows, highs, group)
        scalar = np.array(
            [group_mindist(MBR(low, high), group) for low, high in zip(lows, highs)]
        )
        assert np.array_equal(bulk, scalar)
        q = group[0]
        assert np.array_equal(
            kernels.boxes_mindist_point(lows, highs, q),
            [MBR(low, high).mindist_point(q) for low, high in zip(lows, highs)],
        )


class TestBatchKernels:
    """The ``(B, ·)`` batch kernels must be row-identical per query.

    Each batch kernel claims its row ``b`` equals the corresponding
    per-query kernel against ``groups[b]`` *bit for bit* — the property
    that lets the shared-traversal batch path and the multi-stream MQM
    frontier reuse one kernel call for many queries without changing a
    single answer.
    """

    @staticmethod
    def _stack(group, batch):
        """``batch`` shifted copies of ``group`` (same cardinality/dims)."""
        return np.stack([group + 0.37 * b for b in range(batch)])

    @given(data=workload(min_candidates=1), batch=st.integers(min_value=1, max_value=4))
    @settings(deadline=None, max_examples=40)
    def test_batched_aggregates_match_per_group_rows(self, data, batch):
        candidates, group, _ = data
        groups = self._stack(group, batch)
        stacked = kernels.batched_aggregate_distances(candidates, groups)
        for b in range(batch):
            assert np.array_equal(
                stacked[b], kernels.aggregate_distances(candidates, groups[b])
            )
        if group.shape[1] == 2:
            fast = kernels.groups_aggregate_distances_2d(candidates, groups)
            for b in range(batch):
                assert np.array_equal(
                    fast[b], kernels.aggregate_distances(candidates, groups[b])
                )

    @given(data=boxes_and_group(), batch=st.integers(min_value=1, max_value=4))
    @settings(deadline=None, max_examples=40)
    def test_batched_box_kernels_match_per_query_rows(self, data, batch):
        lows, highs, group, _ = data
        groups = self._stack(group, batch)
        query_lows = groups.min(axis=1)
        query_highs = groups.max(axis=1)
        mindists = kernels.boxes_mindist_boxes(lows, highs, query_lows, query_highs)
        bounds = kernels.boxes_groups_mindist(lows, highs, groups)
        for b in range(batch):
            assert np.array_equal(
                mindists[b],
                kernels.boxes_mindist_box(lows, highs, query_lows[b], query_highs[b]),
            )
            assert np.array_equal(
                bounds[b], kernels.boxes_group_mindist(lows, highs, groups[b])
            )
        if group.shape[1] == 2:
            fast = kernels.boxes_groups_mindist_2d(lows, highs, groups)
            for b in range(batch):
                assert np.array_equal(
                    fast[b], kernels.boxes_group_mindist(lows, highs, groups[b])
                )

    @given(data=boxes_and_group())
    @settings(deadline=None, max_examples=40)
    def test_boxes_mindist_points_rows_match_per_point_kernel(self, data):
        lows, highs, group, _ = data
        matrix = kernels.boxes_mindist_points(lows, highs, group)
        for i, point in enumerate(group):
            assert np.array_equal(
                matrix[i], kernels.boxes_mindist_point(lows, highs, point)
            )

    @given(data=workload(min_candidates=1))
    @settings(deadline=None, max_examples=40)
    def test_scorer_matrix_methods_match_general_kernels(self, data):
        candidates, group, _ = data
        if group.shape[1] != 2:
            return  # Scorer2D is the 2-D fast path only
        scorer = kernels.Scorer2D(group, capacity=max(1, candidates.shape[0]))
        matrix = np.array(scorer.group_distance_matrix(candidates))
        assert np.array_equal(matrix, kernels.pairwise_distances(candidates, group))
        lows = np.minimum(candidates, candidates - 1.0)
        highs = np.maximum(candidates, candidates + 1.0)
        mindists = np.array(scorer.group_mindist_matrix(lows, highs))
        assert np.array_equal(
            mindists, kernels.boxes_mindist_points(lows, highs, group).T
        )
