"""Correctness tests for the disk-resident algorithms: GCP, F-MQM, F-MBM."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_gnn
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.types import GroupQuery
from repro.rtree.tree import RTree
from repro.storage.pointfile import PointFile


@pytest.fixture(scope="module")
def disk_setup():
    """A data tree plus two disk-resident query sets (clustered and spread)."""
    rng = np.random.default_rng(99)
    data = rng.uniform(0, 1000, size=(800, 2))
    tree = RTree.bulk_load(data, capacity=16)
    clustered_queries = rng.uniform(420, 560, size=(300, 2))
    spread_queries = rng.uniform(0, 1000, size=(300, 2))
    return data, tree, clustered_queries, spread_queries


def _query_file(points, block_points=64):
    return PointFile(points, points_per_page=16, block_pages=block_points // 16)


class TestGCP:
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute_force_clustered_queries(self, disk_setup, k):
        data, tree, clustered, _ = disk_setup
        query_tree = RTree.bulk_load(clustered, capacity=16)
        result = gcp(tree, query_tree, k=k)
        expected = brute_force_gnn(data, GroupQuery(clustered, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    def test_matches_brute_force_spread_queries(self, disk_setup):
        data, tree, _, spread = disk_setup
        query_tree = RTree.bulk_load(spread, capacity=16)
        result = gcp(tree, query_tree, k=2)
        expected = brute_force_gnn(data, GroupQuery(spread, k=2))
        assert result.distances() == pytest.approx(expected.distances())

    def test_invalid_k_rejected(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        with pytest.raises(ValueError):
            gcp(tree, RTree.bulk_load(clustered), k=0)

    def test_empty_query_tree(self, disk_setup):
        _, tree, _, _ = disk_setup
        assert gcp(tree, RTree(), k=1).neighbors == []

    def test_pair_cap_marks_result_as_aborted(self, disk_setup):
        _, tree, _, spread = disk_setup
        query_tree = RTree.bulk_load(spread, capacity=16)
        result = gcp(tree, query_tree, k=1, max_pairs=100)
        assert "aborted" in result.cost.algorithm

    def test_charges_node_accesses_on_both_trees(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        query_tree = RTree.bulk_load(clustered, capacity=16)
        tree.reset_stats()
        result = gcp(tree, query_tree, k=1)
        # The tracker reports the union of both trees' accesses.
        assert result.cost.node_accesses > tree.stats.node_accesses
        assert tree.stats.node_accesses > 0

    def test_small_exhaustive_case(self):
        # A case small enough that the stream is fully enumerable by hand.
        data = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 10.0], [2.0, 8.0]])
        queries = np.array([[1.0, 1.0], [9.0, 9.0]])
        tree = RTree.bulk_load(data, capacity=4)
        query_tree = RTree.bulk_load(queries, capacity=4)
        result = gcp(tree, query_tree, k=4)
        expected = brute_force_gnn(data, GroupQuery(queries, k=4))
        assert result.distances() == pytest.approx(expected.distances())


class TestFMQM:
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute_force_clustered_queries(self, disk_setup, k):
        data, tree, clustered, _ = disk_setup
        result = fmqm(tree, _query_file(clustered), k=k)
        expected = brute_force_gnn(data, GroupQuery(clustered, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute_force_spread_queries(self, disk_setup, k):
        data, tree, _, spread = disk_setup
        result = fmqm(tree, _query_file(spread), k=k)
        expected = brute_force_gnn(data, GroupQuery(spread, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    def test_single_block_degenerates_to_group_search(self, disk_setup):
        data, tree, clustered, _ = disk_setup
        single_block = PointFile(clustered, points_per_page=50, block_pages=100)
        assert single_block.block_count == 1
        result = fmqm(tree, single_block, k=3)
        expected = brute_force_gnn(data, GroupQuery(clustered, k=3))
        assert result.distances() == pytest.approx(expected.distances())

    def test_block_reads_are_charged(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        query_file = _query_file(clustered)
        result = fmqm(tree, query_file, k=1)
        assert result.cost.block_reads > 0
        assert result.cost.page_reads > 0

    def test_invalid_k_rejected(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        with pytest.raises(ValueError):
            fmqm(tree, _query_file(clustered), k=0)

    def test_empty_tree(self, disk_setup):
        _, _, clustered, _ = disk_setup
        assert fmqm(RTree(), _query_file(clustered), k=1).neighbors == []


class TestFMBM:
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute_force_clustered_queries(self, disk_setup, k):
        data, tree, clustered, _ = disk_setup
        result = fmbm(tree, _query_file(clustered), k=k)
        expected = brute_force_gnn(data, GroupQuery(clustered, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute_force_spread_queries(self, disk_setup, k):
        data, tree, _, spread = disk_setup
        result = fmbm(tree, _query_file(spread), k=k)
        expected = brute_force_gnn(data, GroupQuery(spread, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    @pytest.mark.parametrize("k", [1, 4])
    def test_depth_first_matches_brute_force(self, disk_setup, k):
        data, tree, clustered, _ = disk_setup
        result = fmbm(tree, _query_file(clustered), k=k, traversal="depth_first")
        expected = brute_force_gnn(data, GroupQuery(clustered, k=k))
        assert result.distances() == pytest.approx(expected.distances())

    def test_unknown_traversal_rejected(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        with pytest.raises(ValueError):
            fmbm(tree, _query_file(clustered), traversal="zigzag")

    def test_summary_scan_can_be_charged(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        uncharged = fmbm(tree, _query_file(clustered), k=1)
        charged = fmbm(tree, _query_file(clustered), k=1, charge_summary_scan=True)
        assert charged.cost.block_reads >= uncharged.cost.block_reads

    def test_invalid_k_rejected(self, disk_setup):
        _, tree, clustered, _ = disk_setup
        with pytest.raises(ValueError):
            fmbm(tree, _query_file(clustered), k=-1)

    def test_empty_query_file_not_possible_but_empty_tree_is(self, disk_setup):
        _, _, clustered, _ = disk_setup
        assert fmbm(RTree(), _query_file(clustered), k=1).neighbors == []


class TestDiskAlgorithmAgreement:
    def test_all_three_agree_on_the_same_input(self, disk_setup):
        data, tree, clustered, _ = disk_setup
        k = 5
        fmqm_result = fmqm(tree, _query_file(clustered), k=k)
        fmbm_result = fmbm(tree, _query_file(clustered), k=k)
        gcp_result = gcp(tree, RTree.bulk_load(clustered, capacity=16), k=k)
        assert fmqm_result.distances() == pytest.approx(fmbm_result.distances())
        assert fmqm_result.distances() == pytest.approx(gcp_result.distances())

    def test_disk_algorithms_agree_with_memory_mbm(self, disk_setup):
        # When the query set happens to fit in memory, the disk algorithms
        # must return exactly what MBM returns.
        from repro.core.mbm import mbm

        data, tree, clustered, _ = disk_setup
        subset = clustered[:80]
        memory = mbm(tree, GroupQuery(subset, k=3))
        disk = fmbm(tree, _query_file(subset), k=3)
        assert memory.distances() == pytest.approx(disk.distances())
