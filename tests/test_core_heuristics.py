"""Tests for repro.core.heuristics: the paper's pruning rules 1-6 and Lemma 1."""

import numpy as np
import pytest

from repro.core.heuristics import (
    gcp_candidate_threshold,
    heuristic1_prunes_node,
    heuristic1_prunes_point,
    heuristic2_prunes,
    heuristic3_prunes,
    heuristic3_prunes_precomputed,
    heuristic4_prunes,
    heuristic5_prunes,
    heuristic6_prunes,
    lemma1_lower_bound,
    weighted_mindist,
)
from repro.geometry.distance import group_distance
from repro.geometry.mbr import MBR
from repro.storage.pointfile import BlockSummary


class TestLemma1:
    def test_lower_bound_never_exceeds_true_distance(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            group = rng.uniform(0, 100, size=(rng.integers(1, 10), 2))
            p = rng.uniform(-50, 150, size=2)
            q = rng.uniform(-50, 150, size=2)
            bound = lemma1_lower_bound(p, q, group)
            assert group_distance(p, group) >= bound - 1e-9

    def test_bound_is_tight_when_p_equals_q(self):
        group = np.array([[0.0, 0.0], [2.0, 0.0]])
        q = np.array([1.0, 0.0])
        assert lemma1_lower_bound(q, q, group) == pytest.approx(
            2 * 0.0 - group_distance(q, group)
        )

    def test_reference_distance_can_be_cached(self):
        group = np.array([[0.0, 0.0], [4.0, 0.0]])
        q = np.array([2.0, 0.0])
        cached = lemma1_lower_bound([10.0, 0.0], q, group, reference_distance=4.0)
        uncached = lemma1_lower_bound([10.0, 0.0], q, group)
        assert cached == pytest.approx(uncached)


class TestHeuristic1:
    def test_example_from_figure_3_3(self):
        # Figure 3.3: best_dist = 5+4 = 9, dist(q, Q) = 1+2 = 3, n = 2, so the
        # pruning bound on mindist(N, q) is (9+3)/2 = 6; both example nodes
        # (at mindist 6 and 7) are pruned.
        assert heuristic1_prunes_node(6.0, 9.0, 3.0, 2)
        assert heuristic1_prunes_node(7.0, 9.0, 3.0, 2)
        assert not heuristic1_prunes_node(5.9, 9.0, 3.0, 2)

    def test_point_variant_matches_node_variant(self):
        assert heuristic1_prunes_point(6.0, 9.0, 3.0, 2) == heuristic1_prunes_node(
            6.0, 9.0, 3.0, 2
        )

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(ValueError):
            heuristic1_prunes_node(1.0, 1.0, 1.0, 0)

    def test_never_prunes_a_point_better_than_best(self):
        # Soundness: if pruning triggers, the true distance cannot beat best.
        rng = np.random.default_rng(1)
        for _ in range(200):
            group = rng.uniform(0, 100, size=(rng.integers(1, 8), 2))
            q = rng.uniform(0, 100, size=2)
            p = rng.uniform(0, 100, size=2)
            best = rng.uniform(0, 400)
            dist_q_group = group_distance(q, group)
            if heuristic1_prunes_point(
                float(np.linalg.norm(p - q)), best, dist_q_group, len(group)
            ):
                assert group_distance(p, group) >= best - 1e-9


class TestHeuristics2And3:
    def test_example_from_figure_3_5(self):
        # Figure 3.5: best_dist = 5, n = 2.  N1 has mindist(N1, M) = 3 which
        # reaches 5/2, so Heuristic 2 prunes it; N2 has mindist 2 and is not
        # pruned by Heuristic 2 but its per-point mindists sum to 6 >= 5, so
        # Heuristic 3 prunes it.
        assert heuristic2_prunes(3.0, 5.0, 2)
        assert not heuristic2_prunes(2.0, 5.0, 2)
        assert heuristic3_prunes_precomputed(6.0, 5.0)

    def test_heuristic3_with_real_geometry(self):
        node = MBR([10.0, 10.0], [12.0, 12.0])
        query_points = np.array([[0.0, 0.0], [0.0, 20.0]])
        summed = float(node.mindist_points(query_points).sum())
        assert heuristic3_prunes(node, query_points, summed - 0.1)
        assert not heuristic3_prunes(node, query_points, summed + 0.1)

    def test_heuristic2_invalid_cardinality(self):
        with pytest.raises(ValueError):
            heuristic2_prunes(1.0, 1.0, 0)

    def test_heuristic3_is_sound(self):
        rng = np.random.default_rng(2)
        for _ in range(200):
            low = rng.uniform(0, 80, size=2)
            node = MBR(low, low + rng.uniform(1, 20, size=2))
            group = rng.uniform(0, 100, size=(rng.integers(1, 6), 2))
            best = rng.uniform(0, 300)
            if heuristic3_prunes(node, group, best):
                probe = rng.uniform(node.low, node.high, size=(20, 2))
                for p in probe:
                    assert group_distance(p, group) >= best - 1e-9


class TestHeuristic4AndThreshold:
    def test_example_from_figure_4_1(self):
        # Figure 4.1(a): after the pair <p2, q2> (distance 5) completes p2
        # with best_dist = 11, candidate p3 has one pair (distance 4) and two
        # missing distances; 2*5 + 4 = 14 >= 11, so p3 is discarded.
        assert heuristic4_prunes(3, 1, 5.0, 4.0, 11.0)

    def test_candidate_kept_when_completion_could_improve(self):
        assert not heuristic4_prunes(3, 2, 1.0, 4.0, 11.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            heuristic4_prunes(2, 3, 1.0, 1.0, 1.0)

    def test_threshold_from_figure_4_1(self):
        # t1 = (11 - 4) / (3 - 2) = 7 for p1 with curr_dist 4 and 2 pairs seen.
        assert gcp_candidate_threshold(3, 2, 4.0, 11.0) == pytest.approx(7.0)

    def test_threshold_requires_incomplete_candidate(self):
        with pytest.raises(ValueError):
            gcp_candidate_threshold(3, 3, 4.0, 11.0)


class TestHeuristics5And6:
    def _summaries(self):
        return [
            BlockSummary(0, MBR([0.0, 0.0], [10.0, 10.0]), 2),
            BlockSummary(1, MBR([50.0, 50.0], [60.0, 60.0]), 3),
        ]

    def test_weighted_mindist_of_node(self):
        summaries = self._summaries()
        node = MBR([20.0, 0.0], [30.0, 10.0])
        expected = 2 * node.mindist_mbr(summaries[0].mbr) + 3 * node.mindist_mbr(
            summaries[1].mbr
        )
        assert weighted_mindist(node, summaries) == pytest.approx(expected)

    def test_weighted_mindist_of_point(self):
        summaries = self._summaries()
        point = np.array([20.0, 5.0])
        expected = 2 * summaries[0].mbr.mindist_point(point) + 3 * summaries[
            1
        ].mbr.mindist_point(point)
        assert weighted_mindist(point, summaries) == pytest.approx(expected)

    def test_example_from_figure_4_5(self):
        # Figure 4.5: two blocks with n1=2, n2=3, best_dist=20; the node's
        # weighted mindist is 2*mindist(N,M1) + 3*mindist(N,M2) = 20, so it
        # is pruned.
        assert heuristic5_prunes(20.0, 20.0)
        assert not heuristic5_prunes(19.9, 20.0)

    def test_heuristic5_soundness(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            summaries = []
            groups = []
            for index in range(rng.integers(1, 4)):
                block = rng.uniform(0, 100, size=(rng.integers(1, 6), 2))
                groups.append(block)
                summaries.append(BlockSummary(index, MBR.from_points(block), len(block)))
            low = rng.uniform(0, 80, size=2)
            node = MBR(low, low + rng.uniform(1, 20, size=2))
            best = rng.uniform(0, 500)
            if heuristic5_prunes(weighted_mindist(node, summaries), best):
                for p in rng.uniform(node.low, node.high, size=(20, 2)):
                    total = sum(group_distance(p, g) for g in groups)
                    assert total >= best - 1e-9

    def test_example_from_figure_4_6(self):
        # Figure 4.6: curr_dist(p) = 8 after the first block; the remaining
        # block has n=3 and mindist(p, M2) = 4, so 8 + 3*4 = 20 >= best_dist
        # = 20 and the point is dropped.
        remaining = [BlockSummary(1, MBR([10.0, 0.0], [20.0, 10.0]), 3)]
        point = np.array([6.0, 5.0])  # mindist to the block MBR is 4
        assert heuristic6_prunes(point, 8.0, remaining, 20.0)
        assert not heuristic6_prunes(point, 7.9, remaining, 20.0)

    def test_heuristic6_soundness(self):
        rng = np.random.default_rng(4)
        for _ in range(100):
            groups = [rng.uniform(0, 100, size=(rng.integers(1, 5), 2)) for _ in range(3)]
            summaries = [
                BlockSummary(i, MBR.from_points(g), len(g)) for i, g in enumerate(groups)
            ]
            p = rng.uniform(0, 100, size=2)
            accumulated = group_distance(p, groups[0])
            best = rng.uniform(0, 600)
            if heuristic6_prunes(p, accumulated, summaries[1:], best):
                total = accumulated + sum(group_distance(p, g) for g in groups[1:])
                assert total >= best - 1e-9
