"""Tests for repro.geometry.mbr."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.geometry.point import GeometryError


@pytest.fixture
def unit_square():
    return MBR([0.0, 0.0], [1.0, 1.0])


@pytest.fixture
def shifted_square():
    return MBR([2.0, 0.0], [3.0, 1.0])


class TestConstruction:
    def test_low_must_not_exceed_high(self):
        with pytest.raises(GeometryError):
            MBR([1.0, 0.0], [0.0, 1.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            MBR([0.0, 0.0], [1.0, 1.0, 1.0])

    def test_from_point_is_degenerate(self):
        box = MBR.from_point([2.0, 3.0])
        assert box.is_degenerate()
        assert box.area() == 0.0

    def test_from_points_covers_all(self):
        points = np.array([[0.0, 5.0], [2.0, 1.0], [-1.0, 3.0]])
        box = MBR.from_points(points)
        assert box.low.tolist() == [-1.0, 1.0]
        assert box.high.tolist() == [2.0, 5.0]
        assert all(box.contains_point(p) for p in points)

    def test_union_of_requires_at_least_one(self):
        with pytest.raises(GeometryError):
            MBR.union_of([])

    def test_union_of_covers_every_member(self, unit_square, shifted_square):
        union = MBR.union_of([unit_square, shifted_square])
        assert union.contains(unit_square)
        assert union.contains(shifted_square)


class TestBasicProperties:
    def test_center(self, unit_square):
        assert unit_square.center.tolist() == [0.5, 0.5]

    def test_area_and_margin(self):
        box = MBR([0.0, 0.0], [2.0, 3.0])
        assert box.area() == 6.0
        assert box.margin() == 5.0

    def test_extents(self):
        box = MBR([1.0, 2.0], [4.0, 6.0])
        assert box.extents.tolist() == [3.0, 4.0]

    def test_higher_dimensional_area(self):
        box = MBR([0.0, 0.0, 0.0], [2.0, 2.0, 2.0])
        assert box.area() == 8.0


class TestPredicates:
    def test_contains_point_inside_and_boundary(self, unit_square):
        assert unit_square.contains_point([0.5, 0.5])
        assert unit_square.contains_point([0.0, 1.0])
        assert not unit_square.contains_point([1.5, 0.5])

    def test_contains_mbr(self, unit_square):
        inner = MBR([0.2, 0.2], [0.8, 0.8])
        assert unit_square.contains(inner)
        assert not inner.contains(unit_square)

    def test_intersects_touching_boxes(self, unit_square):
        touching = MBR([1.0, 0.0], [2.0, 1.0])
        assert unit_square.intersects(touching)

    def test_disjoint_boxes_do_not_intersect(self, unit_square, shifted_square):
        assert not unit_square.intersects(shifted_square)

    def test_intersection_of_overlapping_boxes(self, unit_square):
        other = MBR([0.5, 0.5], [2.0, 2.0])
        overlap = unit_square.intersection(other)
        assert overlap == MBR([0.5, 0.5], [1.0, 1.0])
        assert unit_square.overlap_area(other) == pytest.approx(0.25)

    def test_intersection_of_disjoint_boxes_is_none(self, unit_square, shifted_square):
        assert unit_square.intersection(shifted_square) is None
        assert unit_square.overlap_area(shifted_square) == 0.0


class TestCombining:
    def test_union_covers_both(self, unit_square, shifted_square):
        union = unit_square.union(shifted_square)
        assert union == MBR([0.0, 0.0], [3.0, 1.0])

    def test_union_point_extends_box(self, unit_square):
        extended = unit_square.union_point([2.0, -1.0])
        assert extended.contains_point([2.0, -1.0])
        assert extended.contains(unit_square)

    def test_enlargement_zero_for_contained_box(self, unit_square):
        inner = MBR([0.1, 0.1], [0.9, 0.9])
        assert unit_square.enlargement(inner) == 0.0

    def test_enlargement_positive_for_external_box(self, unit_square, shifted_square):
        assert unit_square.enlargement(shifted_square) > 0.0


class TestDistances:
    def test_mindist_point_zero_inside(self, unit_square):
        assert unit_square.mindist_point([0.3, 0.7]) == 0.0

    def test_mindist_point_axis_aligned(self, unit_square):
        assert unit_square.mindist_point([2.0, 0.5]) == pytest.approx(1.0)

    def test_mindist_point_corner(self, unit_square):
        assert unit_square.mindist_point([2.0, 2.0]) == pytest.approx(np.sqrt(2.0))

    def test_mindist_points_vectorised_matches_scalar(self, unit_square):
        pts = np.array([[2.0, 0.5], [0.5, 0.5], [-1.0, -1.0]])
        vector = unit_square.mindist_points(pts)
        scalar = [unit_square.mindist_point(p) for p in pts]
        assert np.allclose(vector, scalar)

    def test_maxdist_point(self, unit_square):
        assert unit_square.maxdist_point([2.0, 2.0]) == pytest.approx(np.sqrt(8.0))

    def test_mindist_mbr_zero_when_intersecting(self, unit_square):
        other = MBR([0.5, 0.5], [2.0, 2.0])
        assert unit_square.mindist_mbr(other) == 0.0

    def test_mindist_mbr_between_disjoint_boxes(self, unit_square, shifted_square):
        assert unit_square.mindist_mbr(shifted_square) == pytest.approx(1.0)

    def test_mindist_mbr_is_symmetric(self, unit_square, shifted_square):
        assert unit_square.mindist_mbr(shifted_square) == shifted_square.mindist_mbr(unit_square)

    def test_maxdist_mbr_upper_bounds_mindist(self, unit_square, shifted_square):
        assert unit_square.maxdist_mbr(shifted_square) >= unit_square.mindist_mbr(shifted_square)


class TestDunder:
    def test_equality_and_hash(self, unit_square):
        clone = MBR([0.0, 0.0], [1.0, 1.0])
        assert unit_square == clone
        assert hash(unit_square) == hash(clone)

    def test_inequality_with_other_types(self, unit_square):
        assert unit_square != "not an MBR"

    def test_repr_mentions_corners(self, unit_square):
        assert "low" in repr(unit_square) and "high" in repr(unit_square)
