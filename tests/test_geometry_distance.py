"""Tests for repro.geometry.distance."""

import numpy as np
import pytest

from repro.geometry.distance import (
    aggregate_distance,
    distances_to_group,
    euclidean,
    group_distance,
    group_distances_bulk,
    group_mindist,
    squared_euclidean,
)
from repro.geometry.mbr import MBR


class TestPairwiseDistances:
    def test_euclidean_simple(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_euclidean_is_symmetric(self):
        assert euclidean([1, 7], [4, 3]) == euclidean([4, 3], [1, 7])

    def test_euclidean_zero_for_identical_points(self):
        assert euclidean([2.5, -1.0], [2.5, -1.0]) == 0.0

    def test_squared_euclidean_matches_square_of_euclidean(self):
        a, b = [1.0, 2.0], [4.0, 6.0]
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)

    def test_higher_dimensions(self):
        assert euclidean([0, 0, 0], [1, 2, 2]) == pytest.approx(3.0)


class TestGroupDistance:
    def test_distances_to_group_vector(self):
        group = np.array([[0.0, 0.0], [3.0, 4.0]])
        dists = distances_to_group([0.0, 0.0], group)
        assert np.allclose(dists, [0.0, 5.0])

    def test_sum_aggregate_is_default(self):
        group = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 10.0]])
        expected = 0.0 + 5.0 + 10.0
        assert group_distance([0.0, 0.0], group) == pytest.approx(expected)

    def test_max_and_min_aggregates(self):
        group = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 10.0]])
        assert group_distance([0.0, 0.0], group, aggregate="max") == pytest.approx(10.0)
        assert group_distance([0.0, 0.0], group, aggregate="min") == pytest.approx(0.0)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            group_distance([0.0, 0.0], np.array([[1.0, 1.0]]), aggregate="median")

    def test_weights_scale_contributions(self):
        group = np.array([[3.0, 4.0], [6.0, 8.0]])
        unweighted = group_distance([0.0, 0.0], group)
        weighted = group_distance([0.0, 0.0], group, weights=np.array([2.0, 1.0]))
        assert unweighted == pytest.approx(15.0)
        assert weighted == pytest.approx(2 * 5.0 + 10.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            group_distance([0.0, 0.0], np.array([[1.0, 1.0]]), weights=np.array([-1.0]))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            group_distance([0.0, 0.0], np.array([[1.0, 1.0]]), weights=np.array([1.0, 2.0]))


class TestBulkGroupDistances:
    def test_bulk_matches_scalar_computation(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 10, size=(20, 2))
        group = rng.uniform(0, 10, size=(5, 2))
        bulk = group_distances_bulk(points, group)
        scalar = [group_distance(p, group) for p in points]
        assert np.allclose(bulk, scalar)

    def test_bulk_max_aggregate(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 10, size=(10, 2))
        group = rng.uniform(0, 10, size=(4, 2))
        bulk = group_distances_bulk(points, group, aggregate="max")
        scalar = [group_distance(p, group, aggregate="max") for p in points]
        assert np.allclose(bulk, scalar)

    def test_bulk_min_aggregate(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 10, size=(10, 2))
        group = rng.uniform(0, 10, size=(4, 2))
        bulk = group_distances_bulk(points, group, aggregate="min")
        scalar = [group_distance(p, group, aggregate="min") for p in points]
        assert np.allclose(bulk, scalar)

    def test_bulk_weighted(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0, 10, size=(8, 2))
        group = rng.uniform(0, 10, size=(3, 2))
        weights = np.array([1.0, 2.0, 0.5])
        bulk = group_distances_bulk(points, group, weights=weights)
        scalar = [group_distance(p, group, weights=weights) for p in points]
        assert np.allclose(bulk, scalar)

    def test_bulk_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            group_distances_bulk(np.zeros((2, 2)), np.zeros((2, 2)) + 1, aggregate="avg")


class TestGroupMindist:
    def test_lower_bounds_every_contained_point(self):
        rng = np.random.default_rng(7)
        box = MBR([2.0, 2.0], [5.0, 6.0])
        group = rng.uniform(0, 10, size=(6, 2))
        bound = group_mindist(box, group)
        inside = rng.uniform(box.low, box.high, size=(50, 2))
        for p in inside:
            assert group_distance(p, group) >= bound - 1e-9

    def test_zero_when_group_inside_box(self):
        box = MBR([0.0, 0.0], [10.0, 10.0])
        group = np.array([[1.0, 1.0], [5.0, 5.0]])
        assert group_mindist(box, group) == 0.0

    def test_max_aggregate_bound_holds(self):
        rng = np.random.default_rng(8)
        box = MBR([3.0, 3.0], [4.0, 4.0])
        group = rng.uniform(0, 10, size=(5, 2))
        bound = group_mindist(box, group, aggregate="max")
        inside = rng.uniform(box.low, box.high, size=(50, 2))
        for p in inside:
            assert group_distance(p, group, aggregate="max") >= bound - 1e-9


class TestAggregateDistance:
    def test_sum(self):
        assert aggregate_distance([1.0, 2.0, 3.0]) == 6.0

    def test_max(self):
        assert aggregate_distance([1.0, 2.0, 3.0], aggregate="max") == 3.0

    def test_min(self):
        assert aggregate_distance([1.0, 2.0, 3.0], aggregate="min") == 1.0
