"""Tests for repro.rtree.split (R* and quadratic splitting)."""

import numpy as np
import pytest

from repro.rtree.entry import LeafEntry, entries_mbr
from repro.rtree.split import quadratic_split, rstar_split


def _leaf_entries(points):
    return [LeafEntry(p, i) for i, p in enumerate(points)]


@pytest.fixture
def two_cluster_entries():
    """Entries forming two well-separated clusters of five points each."""
    rng = np.random.default_rng(0)
    left = rng.uniform(0, 1, size=(5, 2))
    right = rng.uniform(10, 11, size=(5, 2))
    return _leaf_entries(np.vstack([left, right]))


@pytest.mark.parametrize("split", [rstar_split, quadratic_split], ids=["rstar", "quadratic"])
class TestSplitContracts:
    def test_every_entry_assigned_exactly_once(self, split, two_cluster_entries):
        group_a, group_b = split(two_cluster_entries, min_fill=2)
        ids = sorted(e.record_id for e in group_a + group_b)
        assert ids == list(range(10))

    def test_min_fill_respected(self, split, two_cluster_entries):
        group_a, group_b = split(two_cluster_entries, min_fill=4)
        assert len(group_a) >= 4
        assert len(group_b) >= 4

    def test_split_of_too_few_entries_rejected(self, split):
        entries = _leaf_entries(np.random.default_rng(1).uniform(0, 1, size=(3, 2)))
        with pytest.raises(ValueError):
            split(entries, min_fill=2)

    def test_separated_clusters_are_not_mixed(self, split, two_cluster_entries):
        group_a, group_b = split(two_cluster_entries, min_fill=2)
        # The two natural clusters should end up in different groups: the
        # resulting MBRs must not overlap.
        mbr_a = entries_mbr(group_a)
        mbr_b = entries_mbr(group_b)
        assert mbr_a.overlap_area(mbr_b) == 0.0

    def test_collinear_points_split_without_error(self, split):
        points = np.array([[float(i), 0.0] for i in range(8)])
        group_a, group_b = split(_leaf_entries(points), min_fill=3)
        assert len(group_a) + len(group_b) == 8

    def test_duplicate_points_split_without_error(self, split):
        points = np.tile([1.0, 1.0], (8, 1))
        group_a, group_b = split(_leaf_entries(points), min_fill=3)
        assert len(group_a) + len(group_b) == 8


class TestRStarSpecifics:
    def test_split_minimises_overlap_on_grid(self):
        # A 4x2 grid of points: the minimal-overlap split separates the two
        # columns (or rows) cleanly, never interleaving them.
        points = np.array(
            [[x, y] for x in (0.0, 1.0, 10.0, 11.0) for y in (0.0, 1.0)]
        )
        group_a, group_b = rstar_split(_leaf_entries(points), min_fill=2)
        assert entries_mbr(group_a).overlap_area(entries_mbr(group_b)) == 0.0

    def test_result_is_deterministic(self):
        rng = np.random.default_rng(5)
        entries = _leaf_entries(rng.uniform(0, 100, size=(20, 2)))
        first = rstar_split(entries, min_fill=6)
        second = rstar_split(entries, min_fill=6)
        assert [e.record_id for e in first[0]] == [e.record_id for e in second[0]]
