"""Tests for the declarative QuerySpec: validation, immutability, derived data."""

import numpy as np
import pytest

from repro.api import QuerySpec
from repro.core.types import GroupQuery
from repro.storage.pointfile import PointFile


GROUP = [[10.0, 20.0], [30.0, 40.0], [50.0, 60.0]]


class TestValidation:
    def test_requires_group_or_file(self):
        with pytest.raises(ValueError, match="needs a query group"):
            QuerySpec()

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="non-empty|at least one point"):
            QuerySpec(group=np.empty((0, 2)))

    @pytest.mark.parametrize("k", [0, -1, 0.5])
    def test_rejects_bad_k(self, k):
        with pytest.raises(ValueError, match="k must be"):
            QuerySpec(group=GROUP, k=k)

    def test_rejects_weights_length_mismatch(self):
        with pytest.raises(ValueError, match="does not match the group cardinality"):
            QuerySpec(group=GROUP, weights=[1.0, 2.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            QuerySpec(group=GROUP, weights=[1.0, -2.0, 3.0])

    def test_rejects_non_vector_weights(self):
        with pytest.raises(ValueError, match="1-d vector"):
            QuerySpec(group=GROUP, weights=[[1.0, 2.0, 3.0]])

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            QuerySpec(group=GROUP, aggregate="median")

    def test_rejects_unknown_residency(self):
        with pytest.raises(ValueError, match="unknown residency"):
            QuerySpec(group=GROUP, residency="tape")


class TestNormalisationAndImmutability:
    def test_algorithm_and_residency_are_lowercased(self):
        spec = QuerySpec(group=GROUP, algorithm="MBM", residency="MEMORY")
        assert spec.algorithm == "mbm"
        assert spec.residency == "memory"

    def test_group_is_a_readonly_copy(self):
        source = np.array(GROUP)
        spec = QuerySpec(group=source)
        source[0, 0] = 999.0
        assert spec.group[0, 0] == 10.0
        with pytest.raises(ValueError):
            spec.group[0, 0] = 1.0

    def test_fields_cannot_be_assigned(self):
        spec = QuerySpec(group=GROUP)
        with pytest.raises(AttributeError):
            spec.k = 5

    def test_options_mapping_is_readonly(self):
        spec = QuerySpec(group=GROUP, options={"traversal": "depth_first"})
        with pytest.raises(TypeError):
            spec.options["traversal"] = "best_first"

    def test_replace_returns_new_spec(self):
        spec = QuerySpec(group=GROUP, k=2)
        other = spec.replace(k=7, aggregate="max")
        assert spec.k == 2 and spec.aggregate == "sum"
        assert other.k == 7 and other.aggregate == "max"


class TestDerivedData:
    def test_cardinality_and_dims_from_group(self):
        spec = QuerySpec(group=GROUP)
        assert spec.cardinality == 3
        assert spec.dims == 2

    def test_cardinality_from_file(self, rng):
        points = rng.uniform(0, 100, size=(40, 2))
        spec = QuerySpec(group_file=PointFile(points, points_per_page=10, block_pages=2))
        assert spec.cardinality == 40
        assert spec.dims == 2

    def test_auto_residency_resolution(self, rng):
        assert QuerySpec(group=GROUP).resolved_residency() == "memory"
        file = PointFile(rng.uniform(0, 1, size=(20, 2)), points_per_page=10, block_pages=1)
        assert QuerySpec(group_file=file).resolved_residency() == "disk"
        assert QuerySpec(group=GROUP, residency="disk").resolved_residency() == "disk"

    def test_group_query_materialisation(self):
        spec = QuerySpec(group=GROUP, k=4, aggregate="max", weights=[1.0, 2.0, 3.0])
        query = spec.group_query()
        assert isinstance(query, GroupQuery)
        assert query.k == 4
        assert query.aggregate == "max"
        assert query.weights == pytest.approx([1.0, 2.0, 3.0])

    def test_group_query_requires_points(self, rng):
        file = PointFile(rng.uniform(0, 1, size=(20, 2)), points_per_page=10, block_pages=1)
        with pytest.raises(ValueError, match="disk-resident"):
            QuerySpec(group_file=file).group_query()

    def test_plan_signature_ignores_coordinates(self, rng):
        a = QuerySpec(group=rng.uniform(0, 1, size=(5, 2)), k=3)
        b = QuerySpec(group=rng.uniform(0, 1, size=(5, 2)), k=3)
        assert a.plan_signature() == b.plan_signature()
        assert a.plan_signature() != a.replace(k=4).plan_signature()
        assert a.plan_signature() != a.replace(aggregate="max").plan_signature()
