"""Tests for the flat array-backed R-tree snapshot (repro.rtree.flat).

The contract under test: a ``FlatRTree`` is a bit-identical drop-in for
the object tree on every best-first path — same results, same
node-access and distance-computation counts, same buffer hit/miss
sequences — and round-trips losslessly through its ``.npz`` persistence
in both eager and memory-mapped modes.
"""

import numpy as np
import pytest

from repro.api.spec import QuerySpec
from repro.core.aggregates import aggregate_gnn
from repro.core.engine import GNNEngine
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery
from repro.geometry import kernels
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import incremental_nearest
from repro.rtree.tree import RTree
from repro.storage.buffer import LRUBuffer

ARRAY_FIELDS = (
    "lows",
    "highs",
    "child_start",
    "child_count",
    "levels",
    "node_ids",
    "points",
    "record_ids",
)


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(42).uniform(0, 1000, size=(900, 2))


@pytest.fixture(scope="module")
def tree(dataset):
    return RTree.bulk_load(dataset, capacity=16)


@pytest.fixture(scope="module")
def flat(tree):
    return FlatRTree.from_tree(tree)


def _costs(result):
    return (result.cost.node_accesses, result.cost.distance_computations)


class TestConstruction:
    def test_shape_matches_tree(self, tree, flat):
        assert len(flat) == len(tree)
        assert flat.dims == tree.dims
        assert flat.height == tree.height
        assert flat.capacity == tree.capacity
        assert flat.num_nodes == tree.node_count()

    def test_every_point_round_trips(self, dataset, flat):
        recovered = flat.points_by_record_id()
        assert recovered is not None
        assert np.array_equal(recovered, dataset)

    def test_bulk_load_matches_from_tree(self, dataset, tree, flat):
        direct = FlatRTree.bulk_load(dataset, capacity=16)
        assert direct.num_nodes == flat.num_nodes
        assert np.array_equal(direct.points, flat.points)
        assert np.array_equal(direct.record_ids, flat.record_ids)
        assert np.array_equal(direct.lows, flat.lows)
        assert np.array_equal(direct.highs, flat.highs)

    def test_bulk_load_rejects_unknown_method(self, dataset):
        with pytest.raises(ValueError, match="unknown bulk-load method"):
            FlatRTree.bulk_load(dataset, capacity=16, method="zorder")

    def test_empty_tree_snapshot(self):
        flat = FlatRTree.from_tree(RTree(dims=2))
        assert len(flat) == 0
        assert list(incremental_nearest(flat, [0.0, 0.0])) == []

    def test_single_leaf_snapshot(self):
        tree = RTree.bulk_load(np.array([[1.0, 2.0], [3.0, 4.0]]), capacity=16)
        flat = FlatRTree.from_tree(tree)
        stream = [n.as_tuple() for n in incremental_nearest(flat, [1.0, 2.0])]
        assert stream == [n.as_tuple() for n in incremental_nearest(tree, [1.0, 2.0])]

    def test_dynamic_tree_snapshot(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 100, size=(250, 2))
        tree = RTree(dims=2, capacity=8)
        for i, p in enumerate(points):
            tree.insert(p, record_id=i)
        flat = FlatRTree.from_tree(tree)
        q = [50.0, 50.0]
        assert [n.as_tuple() for n in incremental_nearest(flat, q)] == [
            n.as_tuple() for n in incremental_nearest(tree, q)
        ]


class TestTraversalEquivalence:
    """Streams and algorithms must match the object tree bit for bit."""

    def test_incremental_stream_identical_with_counters(self, dataset, tree, flat):
        tree.reset_stats()
        flat.reset_stats()
        q = [411.0, 290.0]
        assert [n.as_tuple() for n in incremental_nearest(tree, q)] == [
            n.as_tuple() for n in incremental_nearest(flat, q)
        ]
        assert tree.stats.snapshot() == flat.stats.snapshot()

    @pytest.mark.parametrize("algorithm", [mqm, spm, mbm, aggregate_gnn])
    def test_algorithms_bit_identical(self, dataset, tree, flat, algorithm):
        rng = np.random.default_rng(99)
        for n in (2, 7, 31):
            group = rng.uniform(200, 800, size=(n, 2))
            reference = algorithm(tree, GroupQuery(group, k=5))
            result = algorithm(flat, GroupQuery(group, k=5))
            assert [x.as_tuple() for x in result.neighbors] == [
                x.as_tuple() for x in reference.neighbors
            ]
            assert _costs(result) == _costs(reference)

    def test_weighted_mbm_falls_back_to_general_kernels(self, tree, flat):
        rng = np.random.default_rng(3)
        group = rng.uniform(300, 700, size=(6, 2))
        weights = rng.uniform(0.5, 2.0, size=6)
        reference = mbm(tree, GroupQuery(group, k=4, weights=weights))
        result = mbm(flat, GroupQuery(group, k=4, weights=weights))
        assert [x.as_tuple() for x in result.neighbors] == [
            x.as_tuple() for x in reference.neighbors
        ]
        assert _costs(result) == _costs(reference)

    @pytest.mark.parametrize("aggregate", ["max", "min"])
    def test_aggregate_generalisations(self, tree, flat, aggregate):
        group = np.random.default_rng(8).uniform(100, 900, size=(9, 2))
        reference = aggregate_gnn(tree, GroupQuery(group, k=3, aggregate=aggregate))
        result = aggregate_gnn(flat, GroupQuery(group, k=3, aggregate=aggregate))
        assert [x.as_tuple() for x in result.neighbors] == [
            x.as_tuple() for x in reference.neighbors
        ]

    def test_depth_first_is_rejected(self, flat):
        group = GroupQuery([[1.0, 2.0]], k=1)
        with pytest.raises(ValueError, match="best-first"):
            mbm(flat, group, traversal="depth_first")
        with pytest.raises(ValueError, match="best-first"):
            spm(flat, group, traversal="depth_first")

    def test_buffer_hit_miss_parity(self, dataset, tree):
        group = np.random.default_rng(12).uniform(200, 800, size=(8, 2))
        object_buffer = LRUBuffer(8)
        object_tree = RTree.bulk_load(dataset, capacity=16, buffer=object_buffer)
        flat_buffer = LRUBuffer(8)
        flat_tree = FlatRTree.from_tree(object_tree, buffer=flat_buffer)
        for _ in range(3):  # repeated queries exercise hits
            mbm(object_tree, GroupQuery(group, k=4))
            mbm(flat_tree, GroupQuery(group, k=4))
        assert (object_buffer.hits, object_buffer.misses) == (
            flat_buffer.hits,
            flat_buffer.misses,
        )


class TestPersistence:
    def test_save_load_round_trip_is_exact(self, flat, tmp_path):
        path = tmp_path / "index.npz"
        flat.save(path)
        loaded = FlatRTree.load(path)
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(loaded, name), getattr(flat, name)), name
        assert (loaded.dims, loaded.size, loaded.capacity, loaded.height) == (
            flat.dims,
            flat.size,
            flat.capacity,
            flat.height,
        )

    def test_save_respects_exact_path_without_npz_suffix(self, flat, tmp_path):
        # np.savez silently appends ".npz" when handed a bare path;
        # save() must write exactly where it was told so load(path)
        # always round-trips.
        path = tmp_path / "index-no-suffix"
        flat.save(path)
        assert path.exists()
        loaded = FlatRTree.load(path)
        assert np.array_equal(loaded.points, flat.points)
        mapped = FlatRTree.load(path, mmap_mode="r")
        assert np.array_equal(mapped.points, flat.points)

    def test_mmap_load_is_exact_and_memory_mapped(self, flat, tmp_path):
        path = tmp_path / "index.npz"
        flat.save(path)
        mapped = FlatRTree.load(path, mmap_mode="r")
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(mapped, name), getattr(flat, name)), name
        assert isinstance(mapped.points, np.memmap)
        assert isinstance(mapped.lows, np.memmap)
        counters = mapped.mmap_io.snapshot()
        # only the index arrays that stay mapped are counted (not the
        # transient "meta" header, which load() copies and discards)
        assert counters["arrays_mapped"] == len(ARRAY_FIELDS)
        assert counters["bytes_mapped"] >= flat.points.nbytes
        assert counters["pages_mapped"] >= counters["bytes_mapped"] // 4096

    def test_queries_over_mmap_snapshot_match(self, tree, flat, tmp_path):
        path = tmp_path / "index.npz"
        flat.save(path)
        mapped = FlatRTree.load(path, mmap_mode="r")
        group = np.random.default_rng(21).uniform(250, 750, size=(12, 2))
        reference = mbm(tree, GroupQuery(group, k=6))
        result = mbm(mapped, GroupQuery(group, k=6))
        assert [x.as_tuple() for x in result.neighbors] == [
            x.as_tuple() for x in reference.neighbors
        ]
        assert _costs(result) == _costs(reference)

    def test_compressed_archives_cannot_be_mapped(self, flat, tmp_path):
        path = tmp_path / "compressed.npz"
        payload = {name: np.asarray(getattr(flat, name)) for name in ARRAY_FIELDS}
        payload["meta"] = np.array(
            [1, flat.dims, flat.size, flat.capacity, flat.height], dtype=np.int64
        )
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="compressed"):
            FlatRTree.load(path, mmap_mode="r")
        # eager loading still works
        assert len(FlatRTree.load(path)) == len(flat)

    def test_write_mmap_modes_are_rejected(self, flat, tmp_path):
        path = tmp_path / "index.npz"
        flat.save(path)
        with pytest.raises(ValueError, match="read-only"):
            FlatRTree.load(path, mmap_mode="r+")

    def test_unknown_format_version_is_rejected(self, flat, tmp_path):
        path = tmp_path / "future.npz"
        payload = {name: np.asarray(getattr(flat, name)) for name in ARRAY_FIELDS}
        payload["meta"] = np.array(
            [99, flat.dims, flat.size, flat.capacity, flat.height], dtype=np.int64
        )
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="version"):
            FlatRTree.load(path)


class TestScorer2D:
    """The workspace kernels must be bit-identical to the general ones."""

    def test_all_kernels_bit_identical(self):
        rng = np.random.default_rng(77)
        for trial in range(5):
            group = rng.uniform(0, 1000, size=(rng.integers(1, 80), 2))
            scorer = kernels.Scorer2D(group, 64)
            points = rng.uniform(0, 1000, size=(rng.integers(1, 64), 2))
            lows = rng.uniform(0, 900, size=(rng.integers(1, 64), 2))
            highs = lows + rng.uniform(0, 120, size=lows.shape)
            q = rng.uniform(0, 1000, size=2)
            low, high = np.sort(rng.uniform(0, 1000, size=(2, 2)), axis=0)
            pairs = [
                (
                    lambda: kernels.point_distances(points, q),
                    lambda: scorer.point_distances(points, q),
                ),
                (
                    lambda: kernels.points_mindist_box(points, low, high),
                    lambda: scorer.points_mindist_box(points, low, high),
                ),
                (
                    lambda: kernels.boxes_mindist_point(lows, highs, q),
                    lambda: scorer.boxes_mindist_point(lows, highs, q),
                ),
                (
                    lambda: kernels.boxes_mindist_box(lows, highs, low, high),
                    lambda: scorer.boxes_mindist_box(lows, highs, low, high),
                ),
                (
                    lambda: kernels.aggregate_distances(points, group),
                    lambda: scorer.group_sum_distances(points),
                ),
                (
                    lambda: kernels.boxes_group_mindist(lows, highs, group),
                    lambda: scorer.boxes_group_sum_mindist(lows, highs),
                ),
            ]
            for index, (reference, fast) in enumerate(pairs):
                # scorer results are views into reused buffers, so each
                # pair is evaluated and compared before the next call.
                assert np.array_equal(reference(), np.array(fast())), (trial, index)

    def test_scorer_for_gates_on_query_shape(self):
        group = np.zeros((4, 2))
        assert kernels.scorer_for(group, None, "sum", 8) is not None
        assert kernels.scorer_for(group, np.ones(4), "sum", 8) is None
        assert kernels.scorer_for(group, None, "max", 8) is None
        assert kernels.scorer_for(np.zeros((4, 3)), None, "sum", 8) is None

    def test_rejects_non_2d_groups(self):
        with pytest.raises(ValueError, match="2-D"):
            kernels.Scorer2D(np.zeros((4, 3)), 8)


class TestEngineIntegration:
    @pytest.fixture()
    def engine(self, dataset):
        return GNNEngine(dataset, capacity=16)

    def test_execute_routes_through_flat_and_matches_object(self, engine):
        rng = np.random.default_rng(31)
        spec = QuerySpec(group=rng.uniform(200, 800, size=(8, 2)), k=4)
        plan = engine.explain(spec)
        assert plan.use_flat
        flat_result = engine.execute(spec)
        assert engine.flat is not None  # snapshot materialised lazily
        object_result = engine.execute(spec.replace(index="object"))
        assert flat_result.record_ids() == object_result.record_ids()
        assert flat_result.distances() == object_result.distances()
        assert _costs(flat_result) == _costs(object_result)

    def test_snapshot_disabled_engine_stays_on_object_tree(self, dataset):
        engine = GNNEngine(dataset, capacity=16, snapshot=False)
        engine.execute(QuerySpec(group=[[500.0, 500.0]], k=2))
        assert engine.flat is None

    def test_snapshot_is_not_built_for_workloads_that_never_use_it(self, dataset):
        engine = GNNEngine(dataset, capacity=16)
        engine.execute(QuerySpec(group=[[500.0, 500.0]], k=2, index="object"))
        engine.execute(QuerySpec(group=[[500.0, 500.0]], k=2, algorithm="brute-force"))
        engine.execute(
            QuerySpec(
                group=np.random.default_rng(1).uniform(0, 1000, size=(60, 2)),
                residency="disk",
                options={"points_per_page": 10, "block_pages": 2},
            )
        )
        assert engine.flat is None  # lazy provider was never invoked

    def test_insert_overlays_snapshot_instead_of_invalidating(self, engine):
        spec = QuerySpec(group=[[400.0, 400.0]], k=1)
        engine.execute(spec)
        base = engine.flat
        assert base is not None
        inserted = engine.insert([400.0, 400.0])
        # The base snapshot survives untouched; the write sits in the
        # overlay and snapshot-routed queries answer from the merged view.
        assert engine.flat is base
        assert engine.dirty
        assert engine.execute(spec).record_ids() == [inserted]
        # Compaction folds the overlay into a generation-N+1 snapshot.
        compacted = engine.compact()
        assert not engine.dirty
        assert compacted.generation == base.generation + 1
        assert len(compacted) == len(engine.points)
        assert engine.execute(spec).record_ids() == [inserted]

    def test_spec_index_flat_without_snapshot_fails_actionably(self, dataset):
        engine = GNNEngine(dataset, capacity=16, snapshot=False)
        with pytest.raises(ValueError, match="engine.snapshot"):
            engine.execute(QuerySpec(group=[[1.0, 1.0]], k=1, index="flat"))

    def test_plan_time_flat_rejections(self, engine):
        group = [[1.0, 1.0], [2.0, 2.0]]
        with pytest.raises(ValueError, match="depth-first"):
            engine.explain(
                QuerySpec(
                    group=group,
                    algorithm="mbm",
                    index="flat",
                    options={"traversal": "depth_first"},
                )
            )
        with pytest.raises(ValueError, match="disk-resident"):
            engine.explain(
                QuerySpec(
                    group=group,
                    residency="disk",
                    index="flat",
                    options={"points_per_page": 10, "block_pages": 2},
                )
            )

    def test_unknown_index_preference_rejected(self):
        with pytest.raises(ValueError, match="index preference"):
            QuerySpec(group=[[0.0, 0.0]], index="quantum")

    def test_from_index_round_trip(self, engine, tmp_path):
        path = tmp_path / "engine.npz"
        engine.snapshot().save(path)
        readonly = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        assert readonly.points is None  # nothing copied up front
        rng = np.random.default_rng(55)
        spec = QuerySpec(group=rng.uniform(300, 700, size=(5, 2)), k=3)
        assert readonly.execute(spec).record_ids() == engine.execute(spec).record_ids()
        assert len(readonly) == len(engine)
        assert readonly.explain(spec).estimate is not None

    def test_from_index_brute_force_reconstructs_lazily(self, engine, tmp_path):
        path = tmp_path / "engine.npz"
        engine.snapshot().save(path)
        readonly = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        rng = np.random.default_rng(56)
        spec = QuerySpec(group=rng.uniform(300, 700, size=(4, 2)), k=3, algorithm="brute-force")
        assert readonly.execute(spec).record_ids() == engine.execute(spec).record_ids()

    def test_from_index_accepts_writes_via_overlay(self, engine, tmp_path):
        # from_index engines used to reject writes outright; the delta
        # overlay is their write path now — the mmap'd base stays frozen.
        path = tmp_path / "engine.npz"
        engine.snapshot().save(path)
        writable = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        size = len(writable)
        inserted = writable.insert([400.0, 400.0])
        assert writable.dirty and len(writable) == size + 1
        spec = QuerySpec(group=[[400.0, 400.0]], k=1)
        assert writable.execute(spec).record_ids() == [inserted]
        # Disk-resident specs still need the object tree.
        with pytest.raises(ValueError, match="disk-resident"):
            writable.execute(
                QuerySpec(
                    group=np.zeros((60, 2)),
                    residency="disk",
                    options={"points_per_page": 10, "block_pages": 2},
                )
            )

    def test_from_index_rejects_non_snapshots(self, tree):
        with pytest.raises(TypeError, match="FlatRTree"):
            GNNEngine.from_index(tree)

    def test_execute_many_uses_flat_and_matches(self, engine):
        rng = np.random.default_rng(60)
        specs = [QuerySpec(group=rng.uniform(200, 800, size=(6, 2)), k=3) for _ in range(8)]
        batch = engine.execute_many(specs)
        singles = [engine.execute(spec) for spec in specs]
        assert [r.record_ids() for r in batch] == [r.record_ids() for r in singles]
        assert [r.distances() for r in batch] == [r.distances() for r in singles]


class TestDeprecatedShims:
    """The pre-planner entry points: still working, loudly deprecated."""

    @pytest.fixture()
    def engine(self, dataset):
        return GNNEngine(dataset, capacity=16)

    def test_query_emits_exactly_one_deprecation_warning(self, engine):
        with pytest.warns(DeprecationWarning, match="GNNEngine.execute") as captured:
            engine.query([[500.0, 500.0]], k=2)
        assert len(captured) == 1

    def test_query_matches_spec_path_for_every_algorithm(self, engine):
        rng = np.random.default_rng(71)
        group = rng.uniform(250, 750, size=(6, 2))
        for algorithm in ("auto", "mqm", "spm", "mbm", "best-first", "brute-force"):
            with pytest.warns(DeprecationWarning):
                legacy = engine.query(group, k=3, algorithm=algorithm)
            modern = engine.execute(QuerySpec(group=group, k=3, algorithm=algorithm))
            assert legacy.record_ids() == modern.record_ids(), algorithm
            assert legacy.distances() == modern.distances(), algorithm

    def test_query_forwards_aggregate_weights_and_options(self, engine):
        rng = np.random.default_rng(72)
        group = rng.uniform(250, 750, size=(5, 2))
        weights = rng.uniform(0.5, 2.0, size=5)
        with pytest.warns(DeprecationWarning):
            legacy = engine.query(group, k=2, aggregate="max", weights=weights)
        modern = engine.execute(
            QuerySpec(group=group, k=2, aggregate="max", weights=weights)
        )
        assert legacy.record_ids() == modern.record_ids()
        with pytest.warns(DeprecationWarning):
            legacy_options = engine.query(
                group, k=2, algorithm="spm", traversal="depth_first"
            )
        assert "depth_first" in legacy_options.cost.algorithm

    def test_query_disk_emits_exactly_one_deprecation_warning(self, engine):
        rng = np.random.default_rng(73)
        queries = rng.uniform(300, 700, size=(80, 2))
        with pytest.warns(DeprecationWarning, match="residency='disk'") as captured:
            engine.query_disk(queries, k=2, points_per_page=10, block_pages=2)
        assert len(captured) == 1

    def test_query_disk_matches_spec_path(self, engine):
        rng = np.random.default_rng(74)
        queries = rng.uniform(300, 700, size=(90, 2))
        for algorithm in ("auto", "fmqm", "fmbm"):
            with pytest.warns(DeprecationWarning):
                legacy = engine.query_disk(
                    queries, k=2, algorithm=algorithm, points_per_page=10, block_pages=2
                )
            modern = engine.execute(
                QuerySpec(
                    group=queries,
                    k=2,
                    residency="disk",
                    algorithm=algorithm,
                    options={"points_per_page": 10, "block_pages": 2},
                )
            )
            assert legacy.record_ids() == modern.record_ids(), algorithm
            assert legacy.distances() == modern.distances(), algorithm