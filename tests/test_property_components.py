"""Model-based property tests for the bookkeeping components.

These components (the running top-k list, the LRU buffer, the paged
query file) are small but load-bearing: a wrong ``best_dist`` silently
breaks every pruning heuristic, and a wrong block partition breaks the
disk-resident algorithms.  Each test compares the component against a
trivially-correct reference model under arbitrary operation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BestList
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

distance = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, width=32)


class TestBestListModel:
    @given(
        k=st.integers(min_value=1, max_value=8),
        offers=st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), distance),
            min_size=0,
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants_under_arbitrary_offer_sequences(self, k, offers):
        # Duplicate record ids make an exact reference model awkward (the
        # list deliberately ignores re-offers of a resident id), so check
        # the invariants every pruning heuristic relies on: the content is
        # sorted, ids are unique, the size never exceeds k, and best_dist is
        # the k-th distance once full (infinity before).
        best = BestList(k)
        for record_id, dist in offers:
            best.offer(record_id, np.zeros(2), dist)
        neighbors = best.neighbors()
        distances = [n.distance for n in neighbors]
        assert distances == sorted(distances)
        assert len({n.record_id for n in neighbors}) == len(neighbors)
        assert len(neighbors) <= k
        if len(neighbors) == k:
            assert best.best_dist == distances[-1]
        else:
            assert best.best_dist == float("inf")

    @given(
        k=st.integers(min_value=1, max_value=5),
        values=st.lists(distance, min_size=1, max_size=50, unique=True),
    )
    @settings(max_examples=200, deadline=None)
    def test_unique_ids_reduce_to_k_smallest(self, k, values):
        # With unique record ids (the common case inside the algorithms) the
        # final content must be exactly the k smallest offered distances.
        best = BestList(k)
        for record_id, dist in enumerate(values):
            best.offer(record_id, np.zeros(2), dist)
        expected = sorted(values)[:k]
        assert [n.distance for n in best.neighbors()] == expected


class TestLRUBufferModel:
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        accesses=st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_lru(self, capacity, accesses):
        buffer = LRUBuffer(capacity)
        model: list[int] = []  # most recently used last
        for page in accesses:
            expected_hit = page in model
            assert buffer.access(page) == expected_hit
            if expected_hit:
                model.remove(page)
            model.append(page)
            if len(model) > capacity:
                model.pop(0)
        assert len(buffer) == len(model)
        for page in model:
            assert page in buffer


class TestPointFilePartitionProperty:
    @given(
        count=st.integers(min_value=1, max_value=300),
        points_per_page=st.integers(min_value=1, max_value=40),
        block_pages=st.integers(min_value=1, max_value=10),
        sort=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_blocks_partition_the_points(self, count, points_per_page, block_pages, sort):
        rng = np.random.default_rng(count)
        points = rng.uniform(0, 100, size=(count, 2))
        pointfile = PointFile(
            points,
            points_per_page=points_per_page,
            block_pages=block_pages,
            hilbert_sorted=sort,
        )
        blocks = list(pointfile.iter_blocks())
        assert sum(len(block) for block in blocks) == count
        ids = np.concatenate([block.record_ids for block in blocks])
        assert sorted(ids.tolist()) == list(range(count))
        # Every block's points are exactly the original points of its ids.
        for block in blocks:
            assert np.allclose(block.points, points[block.record_ids])
        # Block count formula holds.
        expected_pages = -(-count // points_per_page)
        assert pointfile.block_count == -(-expected_pages // block_pages)
