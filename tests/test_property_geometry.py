"""Property-based tests (hypothesis) for the geometric substrate.

These check the invariants listed in DESIGN.md Section 6: mindist is a
true lower bound, Lemma 1 holds for arbitrary points, the Hilbert curve
is a bijection, and the aggregate lower bounds never exceed the true
aggregate distances.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import lemma1_lower_bound
from repro.geometry.distance import group_distance, group_mindist
from repro.geometry.hilbert import hilbert_index_2d, hilbert_point_2d
from repro.geometry.mbr import MBR

coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


def points_strategy(min_count=1, max_count=12, dims=2):
    return st.lists(
        st.tuples(*[coordinate] * dims), min_size=min_count, max_size=max_count
    ).map(lambda rows: np.array(rows, dtype=np.float64))


@st.composite
def mbr_strategy(draw, dims=2):
    a = np.array(draw(st.tuples(*[coordinate] * dims)), dtype=np.float64)
    b = np.array(draw(st.tuples(*[coordinate] * dims)), dtype=np.float64)
    return MBR(np.minimum(a, b), np.maximum(a, b))


class TestMBRProperties:
    @given(box=mbr_strategy(), point=st.tuples(coordinate, coordinate))
    @settings(max_examples=200, deadline=None)
    def test_mindist_lower_bounds_distance_to_any_inside_point(self, box, point):
        point = np.array(point, dtype=np.float64)
        bound = box.mindist_point(point)
        # Sample deterministic interior points: corners and centre.
        candidates = [box.low, box.high, box.center, np.array([box.low[0], box.high[1]])]
        for candidate in candidates:
            assert np.linalg.norm(candidate - point) >= bound - 1e-6

    @given(box=mbr_strategy(), point=st.tuples(coordinate, coordinate))
    @settings(max_examples=200, deadline=None)
    def test_mindist_zero_iff_point_inside(self, box, point):
        point = np.array(point, dtype=np.float64)
        if box.contains_point(point):
            assert box.mindist_point(point) == 0.0
        else:
            assert box.mindist_point(point) > 0.0

    @given(a=mbr_strategy(), b=mbr_strategy())
    @settings(max_examples=200, deadline=None)
    def test_mbr_mindist_symmetry_and_union_containment(self, a, b):
        assert a.mindist_mbr(b) == b.mindist_mbr(a)
        union = a.union(b)
        assert union.contains(a) and union.contains(b)
        assert union.area() >= max(a.area(), b.area()) - 1e-9

    @given(a=mbr_strategy(), b=mbr_strategy())
    @settings(max_examples=200, deadline=None)
    def test_intersection_consistent_with_intersects(self, a, b):
        region = a.intersection(b)
        if a.intersects(b):
            assert region is not None
            assert a.contains(region) and b.contains(region)
        else:
            assert region is None

    @given(box=mbr_strategy(), point=st.tuples(coordinate, coordinate))
    @settings(max_examples=200, deadline=None)
    def test_maxdist_at_least_mindist(self, box, point):
        point = np.array(point, dtype=np.float64)
        assert box.maxdist_point(point) >= box.mindist_point(point) - 1e-9


class TestLemma1Property:
    @given(
        group=points_strategy(min_count=1, max_count=10),
        p=st.tuples(coordinate, coordinate),
        q=st.tuples(coordinate, coordinate),
    )
    @settings(max_examples=300, deadline=None)
    def test_lemma1_bound_never_exceeds_true_distance(self, group, p, q):
        p = np.array(p, dtype=np.float64)
        q = np.array(q, dtype=np.float64)
        bound = lemma1_lower_bound(p, q, group)
        true_distance = group_distance(p, group)
        assert true_distance >= bound - 1e-6 * max(1.0, abs(bound))


class TestGroupMindistProperty:
    @given(group=points_strategy(min_count=1, max_count=8), box=mbr_strategy())
    @settings(max_examples=200, deadline=None)
    def test_group_mindist_lower_bounds_corner_distances(self, group, box):
        for aggregate in ("sum", "max", "min"):
            bound = group_mindist(box, group, aggregate=aggregate)
            for corner in (box.low, box.high, box.center):
                value = group_distance(corner, group, aggregate=aggregate)
                assert value >= bound - 1e-6 * max(1.0, abs(bound))


class TestHilbertProperty:
    @given(st.integers(min_value=0, max_value=2**10 - 1))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip(self, d):
        x, y = hilbert_point_2d(d, order=5)
        assert hilbert_index_2d(x, y, order=5) == d

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=300, deadline=None)
    def test_index_in_range(self, x, y):
        index = hilbert_index_2d(x, y, order=5)
        assert 0 <= index < 32 * 32
