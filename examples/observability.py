"""Observability end-to-end: traces, metrics, slow queries, live scraping.

Everything the ``repro.obs`` layer offers, on one screen:

1. enable the whole layer — tracer, metrics registry, slow-query log,
   structured JSON event logging;
2. serve the bench's Poisson/Zipf request trace from a multi-process
   :class:`~repro.serve.GNNServer` with the admin HTTP endpoint up;
3. scrape ``/metrics`` (Prometheus text) *while* the trace replays —
   the collectors sample the live ``stats()`` surfaces at scrape time;
4. read back one request's complete span tree (front process → worker
   process and back) and the slow-query log's structured records.

Run with ``PYTHONPATH=src python examples/observability.py``.
"""

import io
import tempfile
import time
import urllib.request

import numpy as np

from repro import QuerySpec
from repro.datasets.workload import generate_request_trace
from repro.obs import disable_all, enable_all, orphan_spans
from repro.serve import GNNServer

RESTAURANTS = 10_000
REQUESTS = 200
GROUP_SIZE = 8
K = 5
WORKERS = 2


def indent_tree(span: dict, depth: int = 0) -> None:
    elapsed_ms = 1000.0 * ((span["end_s"] or span["start_s"]) - span["start_s"])
    attrs = {
        key: value
        for key, value in span["attrs"].items()
        if key in ("outcome", "node_accesses", "distance_computations", "algorithm")
    }
    print(f"  {'  ' * depth}{span['name']:<16s} {elapsed_ms:7.2f} ms  {attrs}")
    for child in span.get("children", ()):
        indent_tree(child, depth + 1)


def main() -> None:
    rng = np.random.default_rng(2004)
    restaurants = rng.uniform(0, 1000, size=(RESTAURANTS, 2))
    trace = generate_request_trace(
        restaurants,
        requests=REQUESTS,
        rate_per_s=500.0,
        n=GROUP_SIZE,
        mbr_fraction=0.02,
        k=K,
        hotspots=12,
        zipf_exponent=1.2,
        seed=7,
    )
    specs = [QuerySpec(group=request.group, k=request.k) for request in trace]

    # Lifecycle events (worker respawns, swaps, compactions...) land on
    # this stream as JSON lines; a real deployment would leave the
    # default (stderr) or point it at a file.
    events = io.StringIO()
    tracer, _registry, slow = enable_all(
        slow_threshold_s=0.010,  # 10 ms — low enough to catch real entries
        log_stream=events,
    )
    try:
        with tempfile.TemporaryDirectory() as tmp:
            with GNNServer.from_points(restaurants, tmp, workers=WORKERS) as server:
                host, port = server.start_exposition()
                url = f"http://{host}:{port}"
                print(f"server up: {server!r}")
                print(f"admin endpoint: {url}/metrics | /stats | /healthz\n")

                started = time.perf_counter()
                futures = []
                for request, spec in zip(trace, specs):
                    delay = started + request.arrival_s - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    futures.append(server.submit(spec))
                    if len(futures) == REQUESTS // 2:
                        # Mid-trace scrape: collectors read the live stats.
                        with urllib.request.urlopen(url + "/metrics") as response:
                            text = response.read().decode()
                        interesting = [
                            line
                            for line in text.splitlines()
                            if line.startswith("repro_serve_requests_total")
                            or line.startswith("repro_serve_pending")
                            or line.startswith("repro_serve_latency_seconds_count")
                        ]
                        print("mid-trace /metrics scrape:")
                        for line in interesting:
                            print(f"  {line}")
                        print()
                results = [future.result(timeout=60) for future in futures]

        print(f"replayed {len(results)} requests\n")

        # One request's span tree, front process to worker and back.
        sample = results[-1]
        spans = tracer.spans(sample.trace_id)
        assert orphan_spans(spans) == [], "span tree must be complete"
        print(f"span tree of request trace_id={sample.trace_id}:")
        indent_tree(tracer.tree(sample.trace_id))

        print(f"\nslow-query log ({slow.recorded} of {slow.observed} observed):")
        for entry in slow.entries()[-3:]:
            cost = entry.get("cost") or {}
            print(
                f"  {entry['kind']}: {1000 * entry['latency_s']:.1f} ms  "
                f"{cost.get('node_accesses', '?')} node accesses  "
                f"trace={entry.get('trace_id')}"
            )

        event_lines = events.getvalue().splitlines()
        print(f"\nstructured events emitted: {len(event_lines)}")
        for line in event_lines[:3]:
            print(f"  {line}")
    finally:
        disable_all()


if __name__ == "__main__":
    main()
