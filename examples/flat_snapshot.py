"""Flat snapshots: persist an index once, serve queries memory-mapped.

A read-mostly deployment rarely wants to rebuild its R-tree on every
process start.  This example builds an engine once, saves its flat
array-backed snapshot to an ``.npz`` file, then brings up a *read-only*
engine straight from that file with ``mmap_mode="r"`` — the arrays are
memory-mapped, so startup is instant and the OS pages index data in on
demand.  Answers (and even the node-access counters) are bit-identical
to the dynamic tree.

Run with::

    python examples/flat_snapshot.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import FlatRTree, GNNEngine, QuerySpec


def main() -> None:
    rng = np.random.default_rng(2004)
    restaurants = rng.uniform(0.0, 100.0, size=(50_000, 2))
    friends = [[12.0, 80.0], [45.0, 40.0], [25.0, 15.0]]
    spec = QuerySpec(group=friends, k=3)

    # Build once.  The engine snapshots the tree lazily on the first
    # query and routes memory-resident specs through the snapshot.
    engine = GNNEngine(restaurants)
    print(engine.explain(spec).describe())
    reference = engine.execute(spec)

    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "restaurants.npz")
        engine.snapshot().save(path)
        size_kb = os.path.getsize(path) / 1024
        print(f"\nSnapshot saved: {path} ({size_kb:.0f} KiB)")

        # Reopen memory-mapped: no tree rebuild, no array copies.
        started = time.perf_counter()
        snapshot = FlatRTree.load(path, mmap_mode="r")
        readonly = GNNEngine.from_index(snapshot)
        startup_ms = (time.perf_counter() - started) * 1000
        print(
            f"Read-only engine up in {startup_ms:.1f} ms — "
            f"{snapshot.mmap_io.pages_mapped} OS pages mapped, none copied"
        )

        result = readonly.execute(spec)
        assert result.record_ids() == reference.record_ids()
        assert result.distances() == reference.distances()
        print("\nTop meeting restaurants (identical to the dynamic tree):")
        for rank, neighbor in enumerate(result.neighbors, start=1):
            x, y = neighbor.point
            print(
                f"  {rank}. restaurant #{neighbor.record_id} at ({x:6.2f}, {y:6.2f}) — "
                f"total distance {neighbor.distance:7.2f} km"
            )
        print(
            f"\nCost: {result.cost.node_accesses} node accesses, "
            f"{result.cost.distance_computations} distance computations "
            f"(bit-identical to the object tree's accounting)"
        )


if __name__ == "__main__":
    main()
