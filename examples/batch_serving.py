"""Batch serving: 1,000 grouped queries against an mmap-loaded snapshot.

The serving scenario: an index is built (and persisted) once, a
read-only worker maps it into memory, and user traffic arrives as
*batches* of "where should the n of us meet?" queries.  The batch path
of ``execute_many`` buckets flat-capable MBM specs by shape, orders each
bucket along the Hilbert curve of the group centroids, and answers the
whole bucket with one shared snapshot traversal — so throughput scales
with batch size instead of paying the full per-query traversal cost B
times.

Run with ``PYTHONPATH=src python examples/batch_serving.py``.
"""

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import GNNEngine, QuerySpec
from repro.rtree.flat import FlatRTree

RESTAURANTS = 20_000
QUERIES = 1_000
GROUP_SIZE = 8
K = 5
BATCH_SIZE = 64


def main() -> None:
    rng = np.random.default_rng(2004)
    restaurants = rng.uniform(0, 1000, size=(RESTAURANTS, 2))

    # --- offline: build the index once and persist the flat snapshot ---
    # (mkdtemp + best-effort cleanup, not a TemporaryDirectory context:
    # the engine keeps the .npz memory-mapped for its whole lifetime,
    # and Windows cannot unlink a file that is still mapped.)
    tmp = tempfile.mkdtemp()
    try:
        path = Path(tmp) / "restaurants.npz"
        GNNEngine(restaurants, capacity=50).snapshot().save(path)
        print(f"snapshot saved: {path.stat().st_size / 1e6:.1f} MB for {RESTAURANTS:,} points")

        # --- online: a read-only worker memory-maps the snapshot -------
        engine = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))

        # 1,000 queries: groups of friends scattered around town.
        centers = rng.uniform(100, 900, size=(QUERIES, 2))
        specs = [
            QuerySpec(group=rng.uniform(c - 60, c + 60, size=(GROUP_SIZE, 2)), k=K)
            for c in centers
        ]

        # Warm-up + correctness: batched answers equal per-query answers.
        sample = specs[:20]
        for spec, batched in zip(sample, engine.execute_many(sample)):
            assert batched.record_ids() == engine.execute(spec).record_ids()

        started = time.perf_counter()
        for start in range(0, QUERIES, BATCH_SIZE):
            engine.execute_many(specs[start : start + BATCH_SIZE])
        batch_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        for spec in specs[:200]:
            engine.execute(spec)
        single_elapsed = (time.perf_counter() - started) / 200 * QUERIES

        print(
            f"{QUERIES:,} queries (n={GROUP_SIZE}, k={K}) in batches of {BATCH_SIZE}: "
            f"{batch_elapsed:.2f}s -> {QUERIES / batch_elapsed:,.0f} queries/s"
        )
        print(
            f"per-query execute (extrapolated): {single_elapsed:.2f}s "
            f"-> {QUERIES / single_elapsed:,.0f} queries/s"
        )
        print(f"batch speedup: {single_elapsed / batch_elapsed:.1f}x")
        del engine  # release the mapping before removing the directory
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    main()
