"""Quickstart: answer a group nearest neighbor query in a few lines.

Three friends at different locations want to pick the restaurant that
minimises their total travel distance — the motivating example of the
paper's introduction.  The dataset of restaurants is indexed once by an
R*-tree; a declarative :class:`~repro.api.QuerySpec` describes the query
and the engine's planner picks the right algorithm (and can explain its
choice before anything runs).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GNNEngine, QuerySpec


def main() -> None:
    rng = np.random.default_rng(2004)

    # 10,000 restaurants spread over a 100 x 100 km city region.
    restaurants = rng.uniform(0.0, 100.0, size=(10_000, 2))
    engine = GNNEngine(restaurants)

    # Three friends at different corners of the city.
    friends = [
        [12.0, 80.0],
        [45.0, 40.0],
        [25.0, 15.0],
    ]
    spec = QuerySpec(group=friends, k=5)

    # The planner explains its decision without executing anything.
    print(engine.explain(spec).describe())
    print()

    result = engine.execute(spec)
    print("Top 5 meeting restaurants (minimum total travel distance):")
    for rank, neighbor in enumerate(result.neighbors, start=1):
        x, y = neighbor.point
        print(
            f"  {rank}. restaurant #{neighbor.record_id} at ({x:6.2f}, {y:6.2f}) — "
            f"total distance {neighbor.distance:7.2f} km"
        )

    print()
    print("Cost of answering the query with the planned algorithm (MBM):")
    print(f"  R-tree node accesses : {result.cost.node_accesses}")
    print(f"  distance computations: {result.cost.distance_computations}")
    print(f"  CPU time             : {result.cost.cpu_time * 1000:.2f} ms")

    # The same query through every algorithm of the paper gives the same
    # answer; only the cost differs.  An explicit algorithm in the spec
    # overrides the planner (and is validated against the registry).
    print()
    print("Same query, every memory-resident algorithm of the paper:")
    for algorithm in ("mqm", "spm", "mbm"):
        outcome = engine.execute(spec.replace(algorithm=algorithm))
        print(
            f"  {algorithm.upper():4s} -> best #{outcome.best.record_id} "
            f"(distance {outcome.best.distance:.2f}), "
            f"{outcome.cost.node_accesses} node accesses, "
            f"{outcome.cost.cpu_time * 1000:.2f} ms"
        )


if __name__ == "__main__":
    main()
