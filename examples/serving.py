"""Concurrent serving: a multi-process server fed by a Poisson/Zipf trace.

The full serving lifecycle on one machine:

1. build the index once and publish it as a flat snapshot (generation 0);
2. start a :class:`~repro.serve.GNNServer` — N worker processes each
   memory-map the *same* ``.npz``, sharing its pages through the OS page
   cache, while a micro-batching scheduler coalesces compatible requests
   into shared-traversal buckets;
3. replay a seeded Poisson arrival process with Zipf-skewed spatial
   popularity (the shape of real "where should we meet?" traffic);
4. hot-swap: publish a successor snapshot with new data — workers finish
   their in-flight batch, then remap, without dropping a request.

Run with ``PYTHONPATH=src python examples/serving.py``.
"""

import tempfile
import time

import numpy as np

from repro import GNNEngine, QuerySpec
from repro.datasets.workload import generate_request_trace
from repro.serve import GNNServer

RESTAURANTS = 20_000
REQUESTS = 400
GROUP_SIZE = 8
K = 5
WORKERS = 4


def main() -> None:
    rng = np.random.default_rng(2004)
    restaurants = rng.uniform(0, 1000, size=(RESTAURANTS, 2))

    trace = generate_request_trace(
        restaurants,
        requests=REQUESTS,
        rate_per_s=300.0,
        n=GROUP_SIZE,
        mbr_fraction=0.02,
        k=K,
        hotspots=12,
        zipf_exponent=1.2,
        seed=7,
    )
    specs = [QuerySpec(group=request.group, k=request.k) for request in trace]

    with tempfile.TemporaryDirectory() as tmp:
        with GNNServer.from_points(restaurants, tmp, workers=WORKERS) as server:
            handle = server.handle()
            print(f"server up: {server!r}")

            # Replay the trace at its recorded arrival times.
            started = time.perf_counter()
            futures = []
            for request, spec in zip(trace, specs):
                delay = started + request.arrival_s - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(handle.submit(spec))
            results = [future.result(timeout=60) for future in futures]
            elapsed = time.perf_counter() - started
            print(
                f"{len(results)} requests served in {elapsed:.2f}s "
                f"({len(results) / elapsed:,.0f} req/s sustained)"
            )

            stats = handle.stats()
            print(
                f"micro-batching: {stats['total']['batches']} batches, "
                f"largest {stats['total']['largest_batch']}, "
                f"latency p50/p95/p99 = "
                f"{stats['latency_ms'].get('p50')}/"
                f"{stats['latency_ms'].get('p95')}/"
                f"{stats['latency_ms'].get('p99')} ms"
            )

            # Hot-swap: a new restaurant opens at the group's geometric
            # median — the sum-distance optimum, so it must take over.
            hot_group = trace[0].group
            before = handle.run(QuerySpec(group=hot_group, k=1), timeout=60)
            newcomer = hot_group.mean(axis=0)
            for _ in range(50):  # Weiszfeld iteration
                gaps = np.maximum(np.linalg.norm(hot_group - newcomer, axis=1), 1e-12)
                newcomer = (hot_group / gaps[:, None]).sum(axis=0) / (1.0 / gaps).sum()
            grown = GNNEngine(np.vstack([restaurants, newcomer]))
            epoch = server.publish_snapshot(grown)
            after = handle.run(QuerySpec(group=hot_group, k=1), timeout=60)
            print(
                f"hot-swap to generation {epoch}: nearest restaurant went "
                f"from record {before.best.record_id} to record "
                f"{after.best.record_id} (the newcomer is id {RESTAURANTS})"
            )
        print("server closed cleanly")


if __name__ == "__main__":
    main()
