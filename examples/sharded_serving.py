"""Sharded serving: scatter-gather GNN queries over process-isolated nodes.

The horizontal-scaling lifecycle:

1. partition the dataset into Hilbert-contiguous shards, each bulk-loaded
   into its own flat snapshot and described by a ``manifest.json``;
2. launch one :class:`~repro.shard.ShardNodeProcess` per shard — a real
   OS process hosting a TCP node over its snapshot, the per-host shape a
   multi-machine deployment would take;
3. connect a :class:`~repro.shard.ShardedEngine` and replay a seeded
   Poisson/Zipf trace: the coordinator prunes shards with the paper's
   Heuristic-2 bound over shard root MBRs, seeded by the manifest's
   record samples, so most queries never touch most shards;
4. kill one node mid-flight and query again with ``allow_degraded`` —
   the survivors answer, and the result says so.

Run with ``PYTHONPATH=src python examples/sharded_serving.py``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GNNEngine, QuerySpec
from repro.datasets.workload import generate_request_trace
from repro.shard import ShardNodeProcess, ShardedEngine, partition_dataset

RESTAURANTS = 5_000
REQUESTS = 150
GROUP_SIZE = 6
K = 4
SHARDS = 4


def main() -> None:
    rng = np.random.default_rng(2004)
    restaurants = rng.uniform(0, 1000, size=(RESTAURANTS, 2))

    trace = generate_request_trace(
        restaurants,
        requests=REQUESTS,
        rate_per_s=500.0,
        n=GROUP_SIZE,
        mbr_fraction=0.02,
        k=K,
        hotspots=10,
        zipf_exponent=1.2,
        seed=7,
    )
    specs = [QuerySpec(group=request.group, k=request.k) for request in trace]
    reference = GNNEngine(restaurants)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "federation"
        manifest = partition_dataset(restaurants, SHARDS, directory)
        print(f"partitioned: {manifest!r}")

        nodes = [
            ShardNodeProcess(shard.shard_id, directory / shard.path, workers=1)
            for shard in manifest.shards
        ]
        try:
            addresses = [node.start() for node in nodes]
            for node in nodes:
                print(f"  {node!r}")

            with ShardedEngine.connect(
                manifest, addresses, allow_degraded=True
            ) as engine:
                # Scatter-gather the whole trace; check against one index.
                futures = [engine.submit(spec) for spec in specs]
                results = [future.result(timeout=60) for future in futures]
                matches = sum(
                    [n.as_tuple() for n in result.neighbors]
                    == [n.as_tuple() for n in reference.execute(spec).neighbors]
                    for spec, result in zip(specs, results)
                )
                stats = engine.stats()["coordinator"]
                contacted = stats["shards_contacted"] / (stats["queries"] * SHARDS)
                print(
                    f"{matches}/{len(specs)} federated answers identical to the "
                    f"single index; {contacted:.0%} of shards contacted per "
                    f"query (pruning skipped the rest)"
                )

                # One machine dies; the federation degrades instead of
                # failing.  The group meets inside the dead shard's MBR,
                # so its records *would* win — the survivors answer
                # anyway and the result is flagged.
                nodes[0].close()
                centre = (
                    np.asarray(manifest.shards[0].root_low)
                    + np.asarray(manifest.shards[0].root_high)
                ) / 2.0
                group = centre + rng.uniform(-20, 20, size=(GROUP_SIZE, 2))
                result = engine.execute(QuerySpec(group=group, k=K))
                print(
                    f"shard 0 down, group meeting inside it: answer from "
                    f"survivors, degraded={result.degraded}, best record "
                    f"{result.best.record_id} at {result.best.distance:.1f}"
                )
        finally:
            for node in nodes:
                node.close()
    print("federation closed cleanly")


if __name__ == "__main__":
    main()
