"""Cluster-quality evaluation and aggregate variants.

Beyond GIS, the paper motivates GNN search with clustering and outlier
detection: the quality of a clustering can be judged by the distance
between the points of a cluster and the *data point* closest to all of
them (a medoid).  This example clusters a synthetic dataset, uses GNN
queries to find each cluster's best medoid, and then demonstrates the
aggregate extensions (``max`` minimises the worst-case distance, i.e. a
1-center style objective; ``min`` finds a point close to *any* group
member).

Run with::

    python examples/facility_siting.py
"""

from __future__ import annotations

import numpy as np

from repro import GNNEngine, QuerySpec
from repro.datasets import gaussian_clusters


def simple_kmeans(points: np.ndarray, k: int, iterations: int = 20, seed: int = 0):
    """A tiny k-means, enough to produce clusters to evaluate."""
    rng = np.random.default_rng(seed)
    centers = points[rng.choice(len(points), size=k, replace=False)]
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        assignment = distances.argmin(axis=1)
        for cluster in range(k):
            members = points[assignment == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    return centers, assignment


def main() -> None:
    # A clustered dataset of "service demand" locations.
    demand = gaussian_clusters(8_000, clusters=6, spread_fraction=0.05, seed=42)
    engine = GNNEngine(demand)

    k_clusters = 6
    centers, assignment = simple_kmeans(demand, k_clusters, seed=1)

    print("Medoid selection per cluster (GNN over the cluster's members):")
    # One spec per cluster, answered as a single execute_many batch.
    cluster_groups = []
    for cluster in range(k_clusters):
        members = demand[assignment == cluster]
        if len(members) == 0:
            continue
        # Sub-sample very large clusters: the query group must fit in memory.
        if len(members) > 256:
            rng = np.random.default_rng(cluster)
            members = members[rng.choice(len(members), size=256, replace=False)]
        cluster_groups.append((cluster, members))
    specs = [
        QuerySpec(group=members, k=1, label=f"cluster-{cluster}")
        for cluster, members in cluster_groups
    ]
    results = engine.execute_many(specs)
    total_cost = 0.0
    for (cluster, members), result in zip(cluster_groups, results):
        medoid = result.best
        total_cost += medoid.distance
        print(
            f"  cluster {cluster}: {len(members):4d} sampled members, "
            f"medoid #{medoid.record_id} with summed distance {medoid.distance:12.1f} "
            f"({result.cost.node_accesses} node accesses)"
        )
    print(f"  total clustering cost (sum over clusters): {total_cost:.1f}")
    print()

    # Aggregate variants on one group of "user" locations.
    rng = np.random.default_rng(5)
    users = rng.uniform(demand.min(axis=0), demand.max(axis=0), size=(32, 2))
    print("Facility siting for one group of 32 users, three objectives:")
    for aggregate, meaning in (
        ("sum", "minimise the total travel distance (the paper's GNN)"),
        ("max", "minimise the worst user's travel distance"),
        ("min", "be as close as possible to at least one user"),
    ):
        result = engine.execute(QuerySpec(group=users, k=1, aggregate=aggregate))
        best = result.best
        x, y = best.point
        print(
            f"  {aggregate:3s}: facility #{best.record_id} at ({x:8.1f}, {y:8.1f}), "
            f"objective value {best.distance:10.1f}  — {meaning}"
        )

    # Weighted variant: one user (index 0) carries 10x weight (for example a
    # delivery hub that will be visited ten times as often).
    weights = np.ones(len(users))
    weights[0] = 10.0
    weighted = engine.execute(QuerySpec(group=users, k=1, aggregate="sum", weights=weights))
    print(
        f"  weighted sum: facility #{weighted.best.record_id} "
        f"(user 0 weighted 10x) — objective {weighted.best.distance:.1f}"
    )


if __name__ == "__main__":
    main()
