"""Disk-resident query sets: F-MQM, F-MBM and GCP side by side.

When the query set is itself a large dataset (the paper's Section 4 —
for example "which warehouse minimises the summed distance to *all*
customers"), the group no longer fits in memory.  This example builds a
customer dataset that is processed from a simulated disk file in
Hilbert-sorted blocks, runs the three disk-resident algorithms through
declarative :class:`~repro.api.QuerySpec` objects, and prints the I/O
and node-access costs each of them pays — plus the planner's own
explanation of what it would pick.

Run with::

    python examples/disk_resident_queries.py
"""

from __future__ import annotations

from repro import GNNEngine, PointFile, QuerySpec
from repro.datasets import pp_like, ts_like
from repro.datasets.workload import scale_into_workspace


def main() -> None:
    # Candidate warehouse sites (the data set P, indexed by an R*-tree).
    warehouses = ts_like(count=12_000, seed=9)
    engine = GNNEngine(warehouses)

    # Customers: a large clustered point set that will play the role of the
    # disk-resident query Q, confined to 8% of the warehouse workspace.
    customers = pp_like(count=5_000, seed=21)
    customers = scale_into_workspace(customers, warehouses, area_fraction=0.08)

    print(f"{len(warehouses)} candidate warehouses, {len(customers)} customers (disk-resident)")
    print()

    # --- F-MQM / F-MBM over a Hilbert-sorted, block-structured file -----
    for algorithm in ("fmqm", "fmbm"):
        query_file = PointFile(customers, points_per_page=50, block_pages=20)
        spec = QuerySpec(group_file=query_file, k=3, algorithm=algorithm)
        result = engine.execute(spec)
        best = result.best
        print(f"{algorithm.upper()}  ({query_file.block_count} query blocks)")
        print(f"  best warehouse   : #{best.record_id} (total distance {best.distance:.1f})")
        print(f"  node accesses    : {result.cost.node_accesses}")
        print(f"  query block reads: {result.cost.block_reads}")
        print(f"  query page reads : {result.cost.page_reads}")
        print(f"  CPU time         : {result.cost.cpu_time:.2f} s")
        print()

    # --- GCP: both datasets indexed by R-trees --------------------------
    # GCP is the paper's weakest method: its cost explodes with the number
    # of query points (Section 4.1 / Figure 5.4), so the demonstration uses
    # a customer subsample to stay interactive (expect a few tens of
    # seconds even so, versus milliseconds for F-MQM / F-MBM above).
    sample = customers[:: max(1, len(customers) // 400)]
    gcp_spec = QuerySpec(group=sample, residency="disk", algorithm="gcp", k=3)
    result = engine.execute(gcp_spec)
    best = result.best
    print(f"GCP (incremental closest pairs over two R-trees, {len(sample)} customer sample)")
    print(f"  best warehouse   : #{best.record_id} (total distance {best.distance:.1f})")
    print(f"  node accesses    : {result.cost.node_accesses} (data tree + query tree)")
    print(f"  CPU time         : {result.cost.cpu_time:.2f} s")
    print()

    # --- automatic algorithm selection ----------------------------------
    auto_spec = QuerySpec(
        group=customers,
        k=3,
        residency="disk",
        options={"points_per_page": 50, "block_pages": 20},
    )
    print("Planner decision for the full customer file:")
    print(engine.explain(auto_spec).describe())
    auto = engine.execute(auto_spec)
    print(
        "auto-selected algorithm:",
        auto.cost.algorithm,
        "(the paper recommends F-MQM for few query blocks, F-MBM otherwise)",
    )


if __name__ == "__main__":
    main()
