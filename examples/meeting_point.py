"""Meeting-point planning for a distributed team (GIS / mobile computing).

The paper's headline application: ``Q`` is a set of user locations, ``P``
is a database of facilities, and the GNN query returns the facility that
minimises the total travel distance of all users.  This example scales
the scenario up — a whole department spread over a metropolitan area —
answering the day's meeting requests as one ``execute_many`` batch, and
shows how the three memory-resident algorithms behave as the group
grows, mirroring Figure 5.1 of the paper.

Run with::

    python examples/meeting_point.py
"""

from __future__ import annotations

import numpy as np

from repro import GNNEngine, QuerySpec


def print_meeting(attendees: np.ndarray, result) -> None:
    """Print the best venues for one planned meeting."""
    print(f"  attendees: {len(attendees):4d}   best venues:")
    for neighbor in result.neighbors:
        x, y = neighbor.point
        average = neighbor.distance / len(attendees)
        print(
            f"    venue #{neighbor.record_id:6d} at ({x:8.1f}, {y:8.1f}) — "
            f"total {neighbor.distance:10.1f}, average per attendee {average:7.1f}"
        )


def compare_algorithms(engine: GNNEngine, attendees: np.ndarray) -> None:
    """Show the cost of the three algorithms on the same query group."""
    print(f"  cost comparison for a group of {len(attendees)} attendees:")
    for algorithm in ("mqm", "spm", "mbm"):
        spec = QuerySpec(group=attendees, k=8, algorithm=algorithm)
        outcome = engine.execute(spec)
        print(
            f"    {algorithm.upper():4s}: {outcome.cost.node_accesses:6d} node accesses, "
            f"{outcome.cost.distance_computations:8d} distance computations, "
            f"{outcome.cost.cpu_time * 1000:8.2f} ms"
        )


def main() -> None:
    rng = np.random.default_rng(7)

    # Candidate venues: a clustered, city-like distribution (the PP-like
    # generator mirrors the "populated places" dataset of the paper).
    from repro.datasets import pp_like

    venues = pp_like(count=20_000, seed=3)
    engine = GNNEngine(venues, buffer_pages=512)
    workspace_low = venues.min(axis=0)
    workspace_high = venues.max(axis=0)

    print("Meeting-point planning over", len(venues), "candidate venues")
    print()

    # The day's meeting requests, answered as ONE batch: execute_many
    # plans each spec once per shape and schedules the queries in Hilbert
    # order so consecutive searches hit warm R-tree pages in the buffer.
    groups = []
    for group_size in (3, 8, 5, 4, 6):
        center = rng.uniform(workspace_low, workspace_high)
        spread = 0.05 * (workspace_high - workspace_low)
        groups.append(rng.normal(loc=center, scale=spread, size=(group_size, 2)))
    specs = [QuerySpec(group=group, k=3, label=f"meeting-{i}") for i, group in enumerate(groups)]
    results = engine.execute_many(specs)
    for attendees, result in zip(groups, results):
        print_meeting(attendees, result)
        print()

    # Department offsite: hundreds of attendees.  MQM degrades sharply with
    # the group size while SPM and MBM stay flat — the effect behind
    # Figure 5.1 of the paper.
    for group_size in (16, 64, 256):
        center = rng.uniform(workspace_low, workspace_high)
        spread = 0.1 * (workspace_high - workspace_low)
        attendees = rng.normal(loc=center, scale=spread, size=(group_size, 2))
        compare_algorithms(engine, attendees)
        print()


if __name__ == "__main__":
    main()
